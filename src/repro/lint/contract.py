"""The declarative lint contract.

The layering table (which subsystem may import which) and the other
knobs live in ``pyproject.toml`` under ``[tool.repro.lint]`` so the
contract is data, not code.  This module loads that section and falls
back to built-in defaults when no pyproject is present (e.g. fixture
trees in the linter's own tests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .domains import DomainContract

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 without tomli
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "LintContract",
    "ForbiddenCombo",
    "load_contract",
    "DEFAULT_LAYERS",
    "find_pyproject",
]


#: Default DESIGN.md import DAG: subsystem -> subsystems it may import.
#: ``"*"`` grants everything (the composition roots).  Absence of an
#: edge is a LAY001; a repro module matching no key is a LAY003.
DEFAULT_LAYERS: Dict[str, List[str]] = {
    "repro": ["*"],  # the package facade re-exports freely
    "repro.sim": [],
    "repro.isa": [],
    "repro.analysis": [],
    "repro.costs": ["repro.sim", "repro.isa"],
    "repro.hw": ["repro.sim", "repro.isa"],
    "repro.rpc": ["repro.sim"],
    "repro.guest": [
        "repro.sim",
        "repro.isa",
        "repro.costs",
        "repro.hw",
        "repro.analysis",
    ],
    "repro.rmm": [
        "repro.sim",
        "repro.isa",
        "repro.costs",
        "repro.hw",
        "repro.rpc",
        "repro.guest",
    ],
    "repro.host": [
        "repro.sim",
        "repro.isa",
        "repro.costs",
        "repro.hw",
        "repro.rpc",
        "repro.guest",
        "repro.rmm",
    ],
    "repro.security": ["repro.sim", "repro.isa", "repro.hw"],
    "repro.experiments": ["*"],
    "repro.obs": ["repro.sim"],
    # the report CLI composes sweeps, so it (alone) reaches experiments
    "repro.obs.report": [
        "repro.sim",
        "repro.obs",
        "repro.experiments",
        "repro.analysis",
    ],
    "repro.lint": [
        "repro.sim",
        "repro.costs",
        "repro.guest",
        "repro.analysis",
        "repro.experiments",
        "repro.obs",
    ],
}

DEFAULT_RNG_MODULE = "repro.sim.rng"

DEFAULT_FORBIDDEN_COMBOS = [
    {
        "modules": ["repro.guest.workloads", "repro.host", "repro.rmm"],
        "allowed-in": ["repro.experiments"],
    }
]


@dataclass(frozen=True)
class ForbiddenCombo:
    """Subsystems that only ``allowed_in`` modules may import together."""

    modules: List[str]
    allowed_in: List[str]


@dataclass
class LintContract:
    """Everything the passes need to know about this repository."""

    layers: Dict[str, List[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    forbidden_combos: List[ForbiddenCombo] = field(default_factory=list)
    #: the single module allowed to construct raw random.Random streams
    rng_module: str = DEFAULT_RNG_MODULE
    #: the cross-domain isolation tables ([tool.repro.lint.domains])
    domains: DomainContract = field(default_factory=DomainContract)

    def digest(self) -> str:
        """Stable hash of the whole contract (incremental-cache salt:
        a contract edit must invalidate every cached file verdict)."""
        payload = {
            "layers": self.layers,
            "combos": [
                [c.modules, c.allowed_in] for c in self.forbidden_combos
            ],
            "rng_module": self.rng_module,
            "domains": {
                "modules": self.domains.modules,
                "structures": self.domains.structures,
                "crossing_surfaces": self.domains.crossing_surfaces,
                "crossing_roots": self.domains.crossing_roots,
                "streams": self.domains.streams,
                "seed_roots": self.domains.seed_roots,
            },
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def subsystem_of(self, module: str) -> Optional[str]:
        """Longest contract key that is a dotted prefix of ``module``.

        A dotless key (the root package facade, e.g. ``"repro"``)
        matches only exactly — otherwise it would swallow every
        undeclared subsystem and neuter LAY003.
        """
        best: Optional[str] = None
        for key in self.layers:
            if module == key or (
                "." in key and module.startswith(key + ".")
            ):
                if best is None or len(key) > len(best):
                    best = key
        return best

    def allows(self, importer_subsystem: str, target_subsystem: str) -> bool:
        allowed = self.layers.get(importer_subsystem, [])
        return (
            importer_subsystem == target_subsystem
            or "*" in allowed
            or target_subsystem in allowed
        )


def _default_contract() -> LintContract:
    return LintContract(
        layers=dict(DEFAULT_LAYERS),
        forbidden_combos=[
            ForbiddenCombo(c["modules"], c["allowed-in"])
            for c in DEFAULT_FORBIDDEN_COMBOS
        ],
        rng_module=DEFAULT_RNG_MODULE,
    )


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.exists():
            return pyproject
    return None


def load_contract(start: Optional[Path] = None) -> LintContract:
    """Load ``[tool.repro.lint]`` from the nearest pyproject.toml.

    Missing file, missing section, or a Python without ``tomllib``
    all yield the built-in default contract.
    """
    contract = _default_contract()
    if start is None:
        start = Path.cwd()
    pyproject = find_pyproject(start)
    if pyproject is None or tomllib is None:
        return contract
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    if not section:
        return contract
    if "layering" in section:
        contract.layers = {
            key: list(value) for key, value in section["layering"].items()
        }
    if "forbidden-combinations" in section:
        contract.forbidden_combos = [
            ForbiddenCombo(
                list(combo.get("modules", [])),
                list(combo.get("allowed-in", [])),
            )
            for combo in section["forbidden-combinations"]
        ]
    contract.rng_module = section.get("rng-module", contract.rng_module)
    if "domains" in section:
        contract.domains = _load_domains(section["domains"])
    return contract


def _load_domains(section: Dict) -> DomainContract:
    """Build the :class:`DomainContract` from ``[tool.repro.lint.domains]``.

    Any table present replaces the built-in default wholesale (same
    policy as the layering table: the pyproject is the source of
    truth, defaults only cover contract-less fixture trees).
    """
    kwargs = {}
    if "modules" in section:
        kwargs["modules"] = {k: str(v) for k, v in section["modules"].items()}
    if "structures" in section:
        kwargs["structures"] = {
            k: str(v) for k, v in section["structures"].items()
        }
    if "crossing-surfaces" in section:
        kwargs["crossing_surfaces"] = list(section["crossing-surfaces"])
    if "crossing-roots" in section:
        kwargs["crossing_roots"] = list(section["crossing-roots"])
    if "streams" in section:
        kwargs["streams"] = {k: str(v) for k, v in section["streams"].items()}
    if "seed-roots" in section:
        kwargs["seed_roots"] = list(section["seed-roots"])
    return DomainContract(**kwargs)
