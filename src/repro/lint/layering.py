"""Layering pass: enforce the DESIGN.md import DAG.

The contract table (``[tool.repro.lint.layering]`` in pyproject.toml)
names every subsystem and the subsystems it may import.  This pass
resolves both absolute (``import repro.host``) and relative
(``from ...host.virtio import X``) imports — including lazy imports
inside function bodies, which hide cycles from the interpreter but not
from the architecture — to the subsystem level and checks each edge.

* **LAY001** — an import edge absent from the contract (an upward or
  sideways dependency: e.g. ``repro.hw`` importing ``repro.host``).
* **LAY002** — a module outside the designated composition roots
  imports a forbidden *combination* of subsystems together (e.g.
  workloads + host + rmm anywhere but ``repro.experiments``).
* **LAY003** — a ``repro`` module whose subsystem does not appear in
  the contract at all: new subsystems must be added to the table
  deliberately, with their allowed imports spelled out.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .contract import LintContract
from .findings import Finding, SourceFile

__all__ = ["check_layering", "resolve_imports"]


def _resolve_relative(
    source: SourceFile, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted target of a relative import, or None."""
    if source.module is None:
        return None
    parts = source.module.split(".")
    package = parts if source.is_package else parts[:-1]
    if node.level - 1 > len(package):
        return None  # escapes the tree; the interpreter would fail too
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        return ".".join(base + node.module.split("."))
    return ".".join(base) if base else None


def resolve_imports(source: SourceFile) -> List[Tuple[int, str]]:
    """All imported module targets as ``(line, absolute_dotted_name)``.

    ``from pkg import name`` reports ``pkg`` (whether ``name`` is a
    submodule or an attribute, the dependency edge lands on ``pkg``
    or deeper; we conservatively also report ``pkg.name`` when the
    import is relative inside the tree, so contract prefixes match
    submodule imports like ``from ..guest import workloads``).
    """
    targets: List[Tuple[int, str]] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(source, node)
            else:
                resolved = node.module
            if resolved is None:
                continue
            targets.append((node.lineno, resolved))
            for alias in node.names:
                if alias.name == "*":
                    continue
                targets.append((node.lineno, f"{resolved}.{alias.name}"))
    return targets


def check_layering(
    source: SourceFile, contract: LintContract
) -> List[Finding]:
    findings: List[Finding] = []
    path = str(source.path)
    module = source.module
    imports = resolve_imports(source)
    repro_imports = [
        (line, target)
        for line, target in imports
        if target == "repro" or target.startswith("repro.")
    ]

    in_tree = module is not None and (
        module == "repro" or module.startswith("repro.")
    )
    if in_tree:
        subsystem = contract.subsystem_of(module)  # type: ignore[arg-type]
        if subsystem is None:
            if not source.suppressed(1, "LAY003"):
                findings.append(
                    Finding(
                        path,
                        1,
                        "LAY003",
                        f"module {module} belongs to no subsystem in the "
                        "layering contract; add it to "
                        "[tool.repro.lint.layering]",
                    )
                )
            return findings
        seen: Dict[Tuple[str, str], int] = {}
        for line, target in repro_imports:
            target_subsystem = contract.subsystem_of(target)
            if target_subsystem is None:
                # one finding per import line, not per dotted sub-target
                key = ("LAY003", str(line))
                if key not in seen and not source.suppressed(line, "LAY003"):
                    seen[key] = line
                    findings.append(
                        Finding(
                            path,
                            line,
                            "LAY003",
                            f"import of {target}: no subsystem in the "
                            "layering contract covers it",
                        )
                    )
                continue
            if not contract.allows(subsystem, target_subsystem):
                key = ("LAY001", target_subsystem)
                if key not in seen and not source.suppressed(line, "LAY001"):
                    seen[key] = line
                    findings.append(
                        Finding(
                            path,
                            line,
                            "LAY001",
                            f"{subsystem} may not import {target_subsystem} "
                            f"(via {target}); allowed: "
                            f"{contract.layers.get(subsystem, [])}",
                        )
                    )

    # forbidden combinations bind modules inside the repro tree; scripts
    # outside it (benchmarks/, examples/) are composition roots by nature
    if not in_tree:
        return findings
    for combo in contract.forbidden_combos:
        if module is not None and any(
            module == root or module.startswith(root + ".")
            for root in combo.allowed_in
        ):
            continue
        hits: Dict[str, int] = {}
        for line, target in repro_imports:
            for member in combo.modules:
                if target == member or target.startswith(member + "."):
                    hits.setdefault(member, line)
        if len(hits) == len(combo.modules):
            line = max(hits.values())
            if not source.suppressed(line, "LAY002"):
                findings.append(
                    Finding(
                        path,
                        line,
                        "LAY002",
                        "imports "
                        + " + ".join(sorted(hits))
                        + " together; only "
                        + ", ".join(combo.allowed_in)
                        + " may compose these",
                    )
                )
    return findings
