"""Shared rendering for lint findings (text and JSON)."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .findings import Finding, RULES

__all__ = ["render_text", "render_json", "sort_findings"]


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line: RULE message`` per finding, plus a summary."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    if not ordered:
        lines.append("repro.lint: clean (0 findings)")
        return "\n".join(lines)
    by_rule: Dict[str, int] = {}
    for finding in ordered:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = ", ".join(
        f"{rule}×{count}" for rule, count in sorted(by_rule.items())
    )
    lines.append(f"repro.lint: {len(ordered)} finding(s) [{summary}]")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    ordered = sort_findings(findings)
    payload = [
        {
            "path": finding.path,
            "line": finding.line,
            "rule": finding.rule,
            "summary": RULES[finding.rule].summary
            if finding.rule in RULES
            else "",
            "message": finding.message,
        }
        for finding in ordered
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
