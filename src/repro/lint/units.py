"""Integer-ns units pass: no floats may reach the simulated clock.

The event loop keeps time as integer nanoseconds (DESIGN.md §2): float
deltas accumulate rounding error, and worse, make event *ordering*
depend on floating-point artifacts.  ``Delay``/``Simulator.schedule``
truncate via ``int(...)``, so a float slips through silently — this
pass rejects it at the source.

* **UNIT001** — a float literal passed directly as a delay argument
  (``Delay(1.5)``, ``sim.schedule(0.5, cb)``).
* **UNIT002** — a float-*producing* expression flowing into a delay
  argument: true division, ``float(...)``, arithmetic with a float
  literal, or a local variable assigned such an expression.  Wrap the
  expression in ``int(...)``/``round(...)`` or use the unit helpers
  (``ns``/``us``/``ms``/``sec`` from ``repro.sim.clock``), which
  round once, explicitly.

Sinks checked: ``Delay(ns)``, ``*.schedule(delay_ns, ...)``,
``*.run_for(ns)``, ``SetTimer(delta_ns)``, ``Compute(work_ns)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .contract import LintContract
from .findings import Finding, SourceFile

__all__ = ["check_units"]

#: call name (last path component) -> index of the nanosecond argument
#: and its keyword name
_SINKS: Dict[str, Tuple[int, str]] = {
    "Delay": (0, "ns"),
    "schedule": (0, "delay_ns"),
    "run_for": (0, "duration_ns"),
    "SetTimer": (0, "delta_ns"),
    "Compute": (0, "work_ns"),
}

#: calls that launder a float back into an int (stop taint propagation)
_SANCTIONERS = {"int", "round", "ns", "us", "ms", "sec", "max", "min", "len"}


def _call_basename(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _float_taint(
    node: ast.AST, float_vars: Dict[str, int]
) -> Optional[Tuple[str, str]]:
    """Why ``node`` may produce a float: (rule, reason) or None."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, float):
            return ("UNIT001", f"float literal {node.value!r}")
        return None
    if isinstance(node, ast.Name):
        if node.id in float_vars:
            return (
                "UNIT002",
                f"variable {node.id!r} holds a float "
                f"(assigned at line {float_vars[node.id]})",
            )
        return None
    if isinstance(node, ast.Call):
        basename = _call_basename(node)
        if basename in _SANCTIONERS:
            return None
        if basename == "float":
            return ("UNIT002", "float(...) call")
        if basename in ("to_us", "to_ms", "to_sec"):
            return ("UNIT002", f"{basename}() returns a float")
        return None  # unknown calls assumed int-valued
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return ("UNIT002", "true division '/' (use '//')")
        for side in (node.left, node.right):
            taint = _float_taint(side, float_vars)
            if taint:
                # a float literal *inside* arithmetic is a float-producing
                # expression (UNIT002), not a bare literal (UNIT001)
                return ("UNIT002", taint[1])
        return None
    if isinstance(node, ast.UnaryOp):
        return _float_taint(node.operand, float_vars)
    if isinstance(node, ast.IfExp):
        for branch in (node.body, node.orelse):
            taint = _float_taint(branch, float_vars)
            if taint:
                return taint
        return None
    return None


class _Scope(ast.NodeVisitor):
    """Collects float-tainted local assignments within one function."""

    def __init__(self) -> None:
        self.float_vars: Dict[str, int] = {}

    def visit_Assign(self, node: ast.Assign) -> None:
        taint = _float_taint(node.value, self.float_vars)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if taint:
                    self.float_vars[target.id] = node.lineno
                else:
                    self.float_vars.pop(target.id, None)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes analysed separately

    visit_AsyncFunctionDef = visit_FunctionDef


def _iter_scope(body_node: ast.AST):
    """Walk a scope without descending into nested functions/classes."""
    stack = list(ast.iter_child_nodes(body_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_body(
    body_node: ast.AST,
    source: SourceFile,
    findings: List[Finding],
) -> None:
    scope = _Scope()
    for child in ast.iter_child_nodes(body_node):
        scope.visit(child)
    float_vars = scope.float_vars

    for node in _iter_scope(body_node):
        if not isinstance(node, ast.Call):
            continue
        basename = _call_basename(node)
        if basename not in _SINKS:
            continue
        position, keyword = _SINKS[basename]
        arg: Optional[ast.AST] = None
        if len(node.args) > position:
            arg = node.args[position]
        else:
            for kw in node.keywords:
                if kw.arg == keyword:
                    arg = kw.value
        if arg is None:
            continue
        taint = _float_taint(arg, float_vars)
        if taint is None:
            continue
        rule, reason = taint
        line = getattr(arg, "lineno", getattr(node, "lineno", 0))
        if source.suppressed(line, rule):
            continue
        findings.append(
            Finding(
                str(source.path),
                line,
                rule,
                f"{reason} flows into {basename}({keyword}=...); the "
                "clock is integer nanoseconds — round explicitly "
                "(int/round or repro.sim.clock.ns/us/ms/sec)",
            )
        )


def check_units(source: SourceFile, contract: LintContract) -> List[Finding]:
    findings: List[Finding] = []
    # analyse each function scope independently (local float tracking),
    # then the module top level
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_body(node, source, findings)
    module_scope = ast.Module(body=[], type_ignores=[])
    module_scope.body = [
        stmt
        for stmt in source.tree.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    _check_body(module_scope, source, findings)
    # class bodies outside methods (dataclass defaults etc.)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            class_scope = ast.Module(body=[], type_ignores=[])
            class_scope.body = [
                stmt
                for stmt in node.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            _check_body(class_scope, source, findings)
    return findings
