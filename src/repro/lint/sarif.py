"""SARIF 2.1.0 output: lint findings as CI-annotatable results.

:func:`render_sarif` emits one run with the full rule registry as
``tool.driver.rules`` (so viewers can show the guarded invariant and
contract key per result) and one ``result`` per finding, with
repo-relative artifact URIs.

:func:`validate_sarif` is a dependency-free structural validator for
the subset of the OASIS SARIF 2.1.0 schema this tool can produce —
the properties the spec marks *required* on the objects we emit, plus
cross-references (every ``ruleId`` must resolve into the driver's
rule array, ``ruleIndex`` must agree).  CI and the test suite run it
on every emitted document; it exists because the container has no
jsonschema package, not because the checks are optional.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from .findings import Finding, RULES, fingerprint

__all__ = ["render_sarif", "validate_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: findings with line 0 (file-scope, e.g. stale baseline entries) still
#: need a valid region — SARIF requires startLine >= 1
_MIN_LINE = 1


def _relative_uri(path: str, base: Path) -> str:
    """Repo-relative posix URI when possible, else the path as given."""
    try:
        return Path(path).resolve().relative_to(base.resolve()).as_posix()
    except (ValueError, OSError):
        return Path(path).as_posix()


def render_sarif(
    findings: Iterable[Finding], base_dir: Path
) -> str:
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    rule_ids = sorted(RULES)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": RULES[rule_id].summary},
            "help": {"text": RULES[rule_id].guards},
            "properties": {"contract": RULES[rule_id].contract},
        }
        for rule_id in rule_ids
    ]
    results: List[Dict] = []
    for finding in ordered:
        result: Dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path, base_dir),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, _MIN_LINE)
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLint/v1": fingerprint(finding)
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://example.invalid/repro/lint"
                        ),
                        "semanticVersion": "1.0.0",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": base_dir.resolve().as_uri() + "/"}
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def validate_sarif(document: Dict) -> List[str]:
    """Structural 2.1.0 conformance problems ([] when valid)."""
    problems: List[str] = []

    def need(obj: Dict, key: str, kind, where: str) -> bool:
        if key not in obj:
            problems.append(f"{where}: required property {key!r} missing")
            return False
        if kind is not None and not isinstance(obj[key], kind):
            problems.append(
                f"{where}.{key}: expected {kind.__name__ if isinstance(kind, type) else kind}, "
                f"got {type(obj[key]).__name__}"
            )
            return False
        return True

    if not isinstance(document, dict):
        return ["document: not an object"]
    need(document, "version", str, "document")
    if document.get("version") != SARIF_VERSION:
        problems.append(
            f"document.version: must be {SARIF_VERSION!r}, got "
            f"{document.get('version')!r}"
        )
    if not need(document, "runs", list, "document"):
        return problems
    for run_idx, run in enumerate(document["runs"]):
        where = f"runs[{run_idx}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not an object")
            continue
        driver: Dict = {}
        if need(run, "tool", dict, where):
            tool = run["tool"]
            if need(tool, "driver", dict, f"{where}.tool"):
                driver = tool["driver"]
                need(driver, "name", str, f"{where}.tool.driver")
        declared: Dict[str, int] = {}
        for rule_idx, rule in enumerate(driver.get("rules", [])):
            rwhere = f"{where}.tool.driver.rules[{rule_idx}]"
            if isinstance(rule, dict):
                if need(rule, "id", str, rwhere):
                    declared[rule["id"]] = rule_idx
            else:
                problems.append(f"{rwhere}: not an object")
        for res_idx, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{res_idx}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere}: not an object")
                continue
            if need(result, "message", dict, rwhere):
                need(result["message"], "text", str, f"{rwhere}.message")
            rule_id = result.get("ruleId")
            if rule_id is not None and declared and rule_id not in declared:
                problems.append(
                    f"{rwhere}.ruleId: {rule_id!r} not in tool.driver.rules"
                )
            rule_index = result.get("ruleIndex")
            if rule_index is not None:
                if rule_id in declared and declared[rule_id] != rule_index:
                    problems.append(
                        f"{rwhere}.ruleIndex: {rule_index} disagrees with "
                        f"driver rule order ({declared[rule_id]})"
                    )
            level = result.get("level")
            if level is not None and level not in (
                "none",
                "note",
                "warning",
                "error",
            ):
                problems.append(f"{rwhere}.level: invalid {level!r}")
            for loc_idx, loc in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{loc_idx}]"
                if not isinstance(loc, dict):
                    problems.append(f"{lwhere}: not an object")
                    continue
                phys = loc.get("physicalLocation")
                if phys is None:
                    continue
                if need(phys, "artifactLocation", dict, lwhere):
                    art = phys["artifactLocation"]
                    if "uri" not in art and "index" not in art:
                        problems.append(
                            f"{lwhere}.artifactLocation: needs uri or index"
                        )
                region = phys.get("region")
                if isinstance(region, dict):
                    start = region.get("startLine")
                    if start is not None and (
                        not isinstance(start, int) or start < 1
                    ):
                        problems.append(
                            f"{lwhere}.region.startLine: must be int >= 1, "
                            f"got {start!r}"
                        )
    return problems
