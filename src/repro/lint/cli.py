"""``python -m repro.lint`` — run the static-analysis suite.

Usage::

    python -m repro.lint [paths ...] [options]

With no paths, lints ``src`` and ``benchmarks`` relative to the
current directory.

Exit codes (CI keys off these; keep them stable):

* **0** — clean: no findings after suppressions and the baseline.
* **1** — static findings (any rule except the runtime ``SAN*``
  family), including expired/stale baseline entries.
* **2** — usage error (unknown pass, bad path, invalid flag combo,
  malformed baseline file).
* **3** — the runtime sanitizer found a divergence (``SAN001–SAN003``).
  Distinct from 1 because a sanitizer failure means *replay is
  broken*, not that a rule was violated — CI treats it as
  infrastructure-red, not lint-red, and it cannot be baselined away.

``--sanitize`` additionally runs the runtime schedule-race sanitizer
(slower: it executes a small experiment several times, including in
subprocesses with different ``PYTHONHASHSEED`` values).

``--format sarif`` emits SARIF 2.1.0 for code-scanning upload;
``--jobs N`` fans per-file analysis over a spawn process pool; the
content-hash cache (``.repro-lint-cache.json`` next to
``pyproject.toml``; disable with ``--no-cache``) makes warm re-runs
near-instant.  Grandfathered findings live in ``lint-baseline.toml``
(see :mod:`repro.lint.suppress`); ``--explain-baseline`` prints the
fingerprint of every current finding so entries can be authored.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .analyze import STATIC_PASSES, analyze_files
from .cache import DEFAULT_CACHE_NAME, LintCache, cache_salt
from .contract import LintContract, find_pyproject, load_contract
from .findings import Finding, RULES, fingerprint
from .reporter import render_json, render_text
from .sarif import render_sarif
from .secflow import check_reexports
from .suppress import apply_baseline, find_baseline, load_baseline

__all__ = [
    "main",
    "lint_paths",
    "collect_files",
    "STATIC_PASSES",
    "rules_markdown",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", "results"}

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_SANITIZER = 3


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.append(candidate)
    return sorted(set(files))


def lint_paths(
    paths: Sequence[Path],
    contract: Optional[LintContract] = None,
    passes: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[LintCache] = None,
) -> List[Finding]:
    """Run the selected static passes over ``paths``; returns findings.

    Includes the per-file passes, pragma hygiene (SUP001) and — when
    the ``secflow`` pass is selected — the tree-level re-export pass
    (SEC004), which sees the whole file set at once.  Baseline
    application is the CLI's job, not this function's: library callers
    get the raw findings.
    """
    if contract is None:
        contract = load_contract(Path(paths[0]) if paths else None)
    selected = list(passes) if passes else list(STATIC_PASSES)
    files = collect_files([Path(p) for p in paths])
    results = analyze_files(
        files, contract, selected, jobs=jobs, cache=cache
    )
    findings: List[Finding] = []
    for result in results:
        findings.extend(result.findings)
    if "secflow" in selected:
        facts = [r.facts for r in results if r.facts is not None]
        findings.extend(check_reexports(facts, contract))
    if rules:
        wanted = set(rules)
        findings = [f for f in findings if f.rule in wanted]
    return findings


def rules_markdown() -> str:
    """The DESIGN.md §5.1 rule table, generated from the registry.

    ``tests/lint/test_rules_table.py`` asserts DESIGN.md contains
    exactly this text between its sync markers; regenerate with
    ``python -m repro.lint --list-rules --format markdown``.
    """
    lines = [
        "| rule | summary | guards | contract |",
        "| --- | --- | --- | --- |",
    ]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        contract = rule.contract
        if contract.startswith("["):
            contract = f"`{contract}`"
        lines.append(
            f"| {rule_id} | {rule.summary} | {rule.guards} | {contract} |"
        )
    return "\n".join(lines)


def _rules_text() -> str:
    lines = ["rule     summary / invariant guarded / contract key", "-" * 64]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id:8s} {rule.summary}")
        lines.append(f"{'':8s}   guards: {rule.guards}")
        lines.append(f"{'':8s}   contract: {rule.contract}")
    return "\n".join(lines)


def _rules_json() -> str:
    import json

    return json.dumps(
        [
            {
                "rule": rule_id,
                "summary": RULES[rule_id].summary,
                "guards": RULES[rule_id].guards,
                "contract": RULES[rule_id].contract,
            }
            for rule_id in sorted(RULES)
        ],
        indent=2,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "determinism / layering / units / cross-domain isolation "
            "static analysis"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif", "markdown"],
        default="text",
        help="findings output (markdown is --list-rules only)",
    )
    parser.add_argument(
        "--passes",
        default=None,
        help="comma-separated subset of: " + ",".join(STATIC_PASSES),
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="only report these comma-separated rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (text/json/markdown) and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="analyse files in N spawn-pool processes (default 1: inline)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash incremental cache",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help=f"cache location (default: {DEFAULT_CACHE_NAME} next to "
        "pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: lint-baseline.toml found upward "
        "of the first path)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report grandfathered findings too",
    )
    parser.add_argument(
        "--explain-baseline",
        action="store_true",
        help="print fingerprint + finding for every pre-baseline "
        "finding (for authoring lint-baseline.toml entries)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="also run the runtime schedule-race sanitizer",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            print(_rules_json())
        elif args.format == "markdown":
            print(rules_markdown())
        else:
            print(_rules_text())
        return EXIT_CLEAN
    if args.format == "markdown":
        print(
            "repro.lint: --format markdown is only valid with --list-rules",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.jobs < 1:
        print("repro.lint: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE

    paths = [Path(p) for p in (args.paths or ["src", "benchmarks"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "repro.lint: no such path(s): "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return EXIT_USAGE
    passes = args.passes.split(",") if args.passes else None
    if passes:
        unknown = [p for p in passes if p not in STATIC_PASSES]
        if unknown:
            print(
                f"repro.lint: unknown pass(es): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    rules = args.rules.split(",") if args.rules else None
    contract = load_contract(paths[0])

    cache: Optional[LintCache] = None
    if not args.no_cache:
        if args.cache_file:
            cache_path: Optional[Path] = Path(args.cache_file)
        else:
            pyproject = find_pyproject(paths[0])
            cache_path = (
                pyproject.parent / DEFAULT_CACHE_NAME if pyproject else None
            )
        if cache_path is not None:
            salt = cache_salt(contract, passes or list(STATIC_PASSES))
            cache = LintCache(cache_path, salt)

    findings = lint_paths(
        paths,
        contract=contract,
        passes=passes,
        rules=rules,
        jobs=args.jobs,
        cache=cache,
    )
    if cache is not None:
        cache.save()
        print(f"repro.lint: {cache.stats()}", file=sys.stderr)

    if args.explain_baseline:
        for finding in sorted(findings):
            print(f"{fingerprint(finding)}  {finding.render()}")
        return EXIT_CLEAN

    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else find_baseline(paths[0])
        )
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, suppressed = apply_baseline(findings, baseline)
        if suppressed:
            print(
                f"repro.lint: {suppressed} finding(s) grandfathered by "
                f"{baseline.path}",
                file=sys.stderr,
            )

    if args.sanitize:
        from .sanitizer import run_sanitizer

        findings.extend(run_sanitizer())

    output = (
        render_json(findings)
        if args.format == "json"
        else render_sarif(findings, Path.cwd())
        if args.format == "sarif"
        else render_text(findings)
    )
    print(output)
    if any(f.rule.startswith("SAN") for f in findings):
        return EXIT_SANITIZER
    return EXIT_FINDINGS if findings else EXIT_CLEAN
