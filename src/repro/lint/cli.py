"""``python -m repro.lint`` — run the static-analysis suite.

Usage::

    python -m repro.lint [paths ...] [options]

With no paths, lints ``src`` and ``benchmarks`` relative to the
current directory.  Exits 0 when clean, 1 when any pass reports a
finding, 2 on usage errors.

``--sanitize`` additionally runs the runtime schedule-race sanitizer
(slower: it executes a small experiment several times, including in
subprocesses with different ``PYTHONHASHSEED`` values).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .contract import LintContract, load_contract
from .determinism import check_determinism
from .findings import Finding, RULES, SourceFile, load_source
from .layering import check_layering
from .obs import check_obs
from .reporter import render_json, render_text
from .units import check_units

__all__ = ["main", "lint_paths", "collect_files", "STATIC_PASSES"]

STATIC_PASSES: Dict[
    str, Callable[[SourceFile, LintContract], List[Finding]]
] = {
    "determinism": check_determinism,
    "layering": check_layering,
    "units": check_units,
    "obs": check_obs,
}

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", "results"}


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.append(candidate)
    return sorted(set(files))


def lint_paths(
    paths: Sequence[Path],
    contract: Optional[LintContract] = None,
    passes: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the selected static passes over ``paths``; returns findings."""
    if contract is None:
        contract = load_contract(Path(paths[0]) if paths else None)
    selected = list(passes) if passes else list(STATIC_PASSES)
    findings: List[Finding] = []
    for path in collect_files([Path(p) for p in paths]):
        try:
            source = load_source(path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    str(path),
                    exc.lineno or 0,
                    "PARSE",
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        for name in selected:
            findings.extend(STATIC_PASSES[name](source, contract))
    if rules:
        wanted = set(rules)
        findings = [f for f in findings if f.rule in wanted]
    return findings


def _list_rules() -> str:
    lines = ["rule     summary / invariant guarded", "-" * 64]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id:8s} {rule.summary}")
        lines.append(f"{'':8s}   guards: {rule.guards}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism / layering / units static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    parser.add_argument(
        "--passes",
        default=None,
        help="comma-separated subset of: " + ",".join(STATIC_PASSES),
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="only report these comma-separated rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="also run the runtime schedule-race sanitizer",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = [Path(p) for p in (args.paths or ["src", "benchmarks"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "repro.lint: no such path(s): "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    passes = args.passes.split(",") if args.passes else None
    if passes:
        unknown = [p for p in passes if p not in STATIC_PASSES]
        if unknown:
            print(
                f"repro.lint: unknown pass(es): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2
    rules = args.rules.split(",") if args.rules else None
    contract = load_contract(paths[0])
    findings = lint_paths(paths, contract=contract, passes=passes, rules=rules)

    if args.sanitize:
        from .sanitizer import run_sanitizer

        findings.extend(run_sanitizer())

    output = (
        render_json(findings)
        if args.format == "json"
        else render_text(findings)
    )
    print(output)
    return 1 if findings else 0
