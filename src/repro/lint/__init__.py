"""repro.lint — determinism & layering static analysis + race sanitizer.

Static passes (AST-based, no imports of the analysed code):

* :mod:`repro.lint.determinism` — bans wall clocks, entropy escapes,
  the global ``random`` stream, raw ``random.Random`` construction,
  and iteration over sets (DET001–DET005).
* :mod:`repro.lint.layering` — enforces the DESIGN.md subsystem import
  DAG from the declarative table in ``pyproject.toml`` (LAY001–LAY003).
* :mod:`repro.lint.units` — keeps floats away from the integer-ns
  clock (UNIT001–UNIT002).

Runtime pass:

* :mod:`repro.lint.sanitizer` — replays a small experiment under a
  permuted same-timestamp tie-break order and differing
  ``PYTHONHASHSEED``, then diffs traces/metrics (SAN001–SAN003).

Run everything with ``python -m repro.lint src benchmarks``.
"""

from .contract import LintContract, load_contract
from .findings import Finding, RULES, Rule
from .cli import STATIC_PASSES, collect_files, lint_paths, main
from .reporter import render_json, render_text

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "LintContract",
    "load_contract",
    "lint_paths",
    "collect_files",
    "STATIC_PASSES",
    "main",
    "render_text",
    "render_json",
]
