"""repro.lint — determinism, layering & isolation static analysis.

Static passes (AST-based, no imports of the analysed code):

* :mod:`repro.lint.determinism` — bans wall clocks, entropy escapes,
  the global ``random`` stream, raw ``random.Random`` construction,
  and iteration over sets (DET001–DET005).
* :mod:`repro.lint.layering` — enforces the DESIGN.md subsystem import
  DAG from the declarative table in ``pyproject.toml`` (LAY001–LAY003).
* :mod:`repro.lint.units` — keeps floats away from the integer-ns
  clock (UNIT001–UNIT002).
* :mod:`repro.lint.secflow` — the core-gap contract's static twin:
  cross-domain attribute access, undeclared µarch structures,
  callback capture and re-export leaks (SEC001–SEC004), driven by
  ``[tool.repro.lint.domains]``.
* :mod:`repro.lint.seeds` — seed discipline: every RNG stream derives
  from the run seed via a literal, domain-owned namespace
  (SEED001–SEED003).

Runtime pass:

* :mod:`repro.lint.sanitizer` — replays a small experiment under a
  permuted same-timestamp tie-break order and differing
  ``PYTHONHASHSEED``, then diffs traces/metrics (SAN001–SAN003).
  Sanitizer failures exit with code 3 (vs 1 for static findings).

Support: inline pragmas and the expiring grandfather baseline
(:mod:`repro.lint.suppress`), SARIF 2.1.0 output
(:mod:`repro.lint.sarif`), and the content-hash incremental cache
(:mod:`repro.lint.cache`) that makes warm re-runs near-instant.

Run everything with ``python -m repro.lint src benchmarks``.
"""

from .cache import LintCache, cache_salt
from .contract import LintContract, load_contract
from .domains import DomainContract
from .findings import Finding, RULES, Rule, fingerprint
from .analyze import STATIC_PASSES, analyze_files
from .cli import collect_files, lint_paths, main, rules_markdown
from .reporter import render_json, render_text
from .sarif import render_sarif, validate_sarif
from .suppress import Baseline, BaselineEntry, apply_baseline, load_baseline

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "fingerprint",
    "LintContract",
    "DomainContract",
    "load_contract",
    "lint_paths",
    "collect_files",
    "analyze_files",
    "STATIC_PASSES",
    "main",
    "rules_markdown",
    "render_text",
    "render_json",
    "render_sarif",
    "validate_sarif",
    "LintCache",
    "cache_salt",
    "Baseline",
    "BaselineEntry",
    "apply_baseline",
    "load_baseline",
]
