"""Runtime schedule-race sanitizer.

The static passes cannot see every nondeterminism: a dict keyed by
object identity, an order-sensitive reduction over hash-ordered data,
or a genuine schedule race between same-timestamp events.  This pass
*executes* a small probe experiment (a short core-gapped CoreMark run
with schedule tracing on) several ways and diffs canonical digests of
its traces and metrics:

* **SAN001 (replay)** — the probe runs twice in-process with the same
  seed; traces and metrics must be bit-identical (DESIGN.md
  invariant #6 verbatim).
* **SAN002 (hash seed)** — the probe runs in two subprocesses with
  different ``PYTHONHASHSEED`` values; digests must match.  Catches
  results riding on ``set``/hash iteration order that the static
  DET005 heuristic missed.
* **SAN003 (tie-break)** — the probe runs with same-timestamp event
  ordering permuted (``Simulator(tie_break=...)``): FIFO vs LIFO vs a
  seeded shuffle.  A permuted key reorders only *causally unrelated*
  simultaneous events, so the paper-level **metrics** (scores, exit
  counts) must not move.  Full traces may legitimately differ — two
  independent events swapping places is not a bug — so SAN003 diffs
  metrics only.

The diff helper (:func:`diff_digests`) is reused by the invariant #6
end-to-end test in ``tests/experiments/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..costs import DEFAULT_COSTS
from ..experiments.config import SystemConfig
from ..experiments.workbench import build_system, vcpus_for
from ..guest.vm import GuestVm
from ..guest.workloads import CoremarkStats, coremark_score, coremark_workload_factory
from ..sim.clock import ms
from .findings import Finding

__all__ = [
    "RunDigest",
    "run_probe",
    "diff_digests",
    "run_sanitizer",
    "SANITIZER_ORIGIN",
]

#: pseudo-path used for sanitizer findings (they have no source line)
SANITIZER_ORIGIN = "<repro.lint.sanitizer>"


@dataclass
class RunDigest:
    """Canonical, comparable serialization of one probe run."""

    #: canonical trace lines "t|kind|core|domain|detail"
    records: List[str]
    #: execution spans "core|domain|start|end"
    spans: List[str]
    #: named event counters, sorted
    counters: Dict[str, int]
    #: paper-level metrics (score, exit counts, sim end time)
    metrics: Dict[str, object]

    def to_json(self) -> str:
        return json.dumps(
            {
                "records": self.records,
                "spans": self.spans,
                "counters": self.counters,
                "metrics": self.metrics,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunDigest":
        data = json.loads(text)
        return cls(
            records=data["records"],
            spans=data["spans"],
            counters=data["counters"],
            metrics=data["metrics"],
        )


#: probe scenarios: the undelegated core-gapped run exercises the
#: exit-heavy remote-RPC path (timer exits, host kicks, wake-up
#:  thread); the shared run exercises same-core KVM dispatch and IRQs
_PROBE_SCENARIOS = [
    ("gapped-nodeleg", {"mode": "gapped", "delegation": False}),
    ("shared", {"mode": "shared"}),
]


def _run_scenario(
    label: str,
    overrides: Dict[str, object],
    seed: int,
    tie_break: str,
    n_cores: int,
    duration_ms: int,
    trace_schedules: bool = True,
    scheduler: str = "calendar",
    coalesce_compute: bool = False,
) -> RunDigest:
    config = SystemConfig(
        n_cores=n_cores,
        seed=seed,
        trace_schedules=trace_schedules,
        tie_break=tie_break,
        scheduler=scheduler,
        coalesce_compute=coalesce_compute,
        **overrides,  # type: ignore[arg-type]
    )
    system = build_system(config, DEFAULT_COSTS)
    stats = CoremarkStats()
    vm = GuestVm(
        f"probe-{label}",
        vcpus_for(config, n_cores),
        coremark_workload_factory(stats),
        costs=DEFAULT_COSTS,
    )
    kvm = system.launch(vm)
    system.start(kvm)
    start = system.sim.now
    system.run_for(ms(duration_ms))
    elapsed = system.sim.now - start
    system.finish()

    tracer = system.tracer
    records = [
        f"{label}|{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
        for r in tracer.records
    ]
    spans = [
        f"{label}|{s.core}|{s.domain}|{s.start}|{s.end}"
        for s in tracer.spans
    ]
    counters = {
        f"{label}:{k}": int(v) for k, v in sorted(tracer.counters.items())
    }
    exit_counts = {
        k: int(v) for k, v in sorted(system.exit_counts().items())
    }
    metrics: Dict[str, object] = {
        f"{label}:score": repr(coremark_score(stats, elapsed)),
        f"{label}:elapsed_ns": elapsed,
        f"{label}:end_ns": system.sim.now,
        f"{label}:exit_counts": exit_counts,
    }
    return RunDigest(records, spans, counters, metrics)


def run_probe(
    seed: int = 0,
    tie_break: str = "fifo",
    n_cores: int = 4,
    duration_ms: int = 40,
    trace_schedules: bool = True,
    scheduler: str = "calendar",
    coalesce_compute: bool = False,
) -> RunDigest:
    """Run all probe scenarios once and digest traces and metrics.

    ``trace_schedules=False`` runs with observability disabled — the
    digest then proves instrumentation is inert when off (the golden
    file under ``tests/obs/`` pins the pre-instrumentation bytes).
    ``scheduler`` and ``coalesce_compute`` select engine fast paths that
    are digest-interchangeable by contract; the scheduler-equivalence
    tests diff a probe per knob setting against the default.
    """
    combined = RunDigest([], [], {}, {})
    for label, overrides in _PROBE_SCENARIOS:
        digest = _run_scenario(
            label, overrides, seed, tie_break, n_cores, duration_ms,
            trace_schedules=trace_schedules,
            scheduler=scheduler,
            coalesce_compute=coalesce_compute,
        )
        combined.records.extend(digest.records)
        combined.spans.extend(digest.spans)
        combined.counters.update(digest.counters)
        combined.metrics.update(digest.metrics)
    return combined


def _diff_lists(label: str, a: List[str], b: List[str], limit: int) -> List[str]:
    out: List[str] = []
    if len(a) != len(b):
        out.append(f"{label}: {len(a)} vs {len(b)} entries")
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            out.append(f"{label}[{index}]: {left!r} != {right!r}")
            if len(out) >= limit:
                out.append(f"{label}: ... (truncated)")
                return out
    return out


def diff_digests(
    a: RunDigest,
    b: RunDigest,
    metrics_only: bool = False,
    limit: int = 8,
) -> List[str]:
    """Human-readable divergences between two digests ([] if identical)."""
    out: List[str] = []
    if a.metrics != b.metrics:
        for key in sorted(set(a.metrics) | set(b.metrics)):
            left, right = a.metrics.get(key), b.metrics.get(key)
            if left != right:
                out.append(f"metrics[{key}]: {left!r} != {right!r}")
    if metrics_only:
        return out
    if a.counters != b.counters:
        for key in sorted(set(a.counters) | set(b.counters)):
            left, right = a.counters.get(key), b.counters.get(key)
            if left != right:
                out.append(f"counters[{key}]: {left} != {right}")
    out.extend(_diff_lists("records", a.records, b.records, limit))
    out.extend(_diff_lists("spans", a.spans, b.spans, limit))
    return out


def _probe_in_subprocess(
    hashseed: int, seed: int, tie_break: str
) -> RunDigest:
    """Run the probe under a specific PYTHONHASHSEED in a child python."""
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = (
        f"{src_root}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src_root)
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint.sanitizer",
            "--emit-digest",
            "--seed",
            str(seed),
            "--tie-break",
            tie_break,
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return RunDigest.from_json(result.stdout)


def run_sanitizer(
    seed: int = 0,
    subprocess_checks: bool = True,
    tie_breaks: Optional[List[str]] = None,
) -> List[Finding]:
    """Run all sanitizer checks; returns findings (empty when healthy)."""
    findings: List[Finding] = []

    def report(rule: str, check: str, divergences: List[str]) -> None:
        detail = "; ".join(divergences[:4])
        findings.append(
            Finding(
                SANITIZER_ORIGIN,
                0,
                rule,
                f"{check}: {len(divergences)} divergence(s): {detail}",
            )
        )

    # SAN001: same-seed in-process replay must be bit-identical
    baseline = run_probe(seed=seed)
    replay = run_probe(seed=seed)
    divergences = diff_digests(baseline, replay)
    if divergences:
        report("SAN001", "same-seed replay", divergences)

    # SAN002: differing PYTHONHASHSEED must not move anything
    if subprocess_checks:
        try:
            digest_a = _probe_in_subprocess(1, seed, "fifo")
            digest_b = _probe_in_subprocess(271828, seed, "fifo")
        except subprocess.CalledProcessError as exc:
            findings.append(
                Finding(
                    SANITIZER_ORIGIN,
                    0,
                    "SAN002",
                    "probe subprocess failed: "
                    + (exc.stderr or "").strip()[-200:],
                )
            )
        else:
            divergences = diff_digests(digest_a, digest_b)
            if divergences:
                report("SAN002", "PYTHONHASHSEED 1 vs 271828", divergences)
            # the in-process run must match the subprocess one too
            divergences = diff_digests(baseline, digest_a)
            if divergences:
                report("SAN002", "in-process vs subprocess", divergences)

    # SAN003: permuted same-timestamp tie-breaking must not move metrics
    for tie_break in tie_breaks if tie_breaks is not None else ["lifo", "seeded:7"]:
        permuted = run_probe(seed=seed, tie_break=tie_break)
        divergences = diff_digests(baseline, permuted, metrics_only=True)
        if divergences:
            report("SAN003", f"tie-break fifo vs {tie_break}", divergences)
    return findings


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.lint.sanitizer")
    parser.add_argument("--emit-digest", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tie-break", default="fifo")
    parser.add_argument(
        "--no-subprocess",
        action="store_true",
        help="skip the PYTHONHASHSEED subprocess checks",
    )
    args = parser.parse_args(argv)
    if args.emit_digest:
        print(run_probe(seed=args.seed, tie_break=args.tie_break).to_json())
        return 0
    findings = run_sanitizer(
        seed=args.seed, subprocess_checks=not args.no_subprocess
    )
    for finding in findings:
        print(finding.render())
    print(
        f"repro.lint.sanitizer: {len(findings)} finding(s)"
        if findings
        else "repro.lint.sanitizer: clean"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(_main())
