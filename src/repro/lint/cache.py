"""Content-hash incremental cache for per-file lint verdicts.

Re-linting an unchanged tree should be near-instant: the expensive
work is parsing + walking every file's AST, and a file's verdict
(findings **and** its extracted facts for the tree-level passes)
depends only on its bytes and the contract.  So the cache keys on the
sha256 of the file *content* — never mtimes, which are wall-clock
state and would make cache behaviour non-reproducible across
checkouts — and the whole store is salted with
:meth:`LintContract.digest` plus the selected pass list: editing the
contract or choosing different passes invalidates every entry at
once, which is always correct and never subtle.

The store is one JSON file (default ``.repro-lint-cache.json`` next
to ``pyproject.toml``, gitignored).  A version/salt mismatch or any
parse problem silently yields an empty cache — a cache must never be
able to make lint *fail*.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .contract import LintContract
from .findings import Finding

__all__ = [
    "LintCache",
    "cache_salt",
    "content_hash",
    "DEFAULT_CACHE_NAME",
    "LINT_CACHE_VERSION",
]

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

#: bump when the on-disk entry shape or any pass semantics change in a
#: way the contract digest cannot see
LINT_CACHE_VERSION = 1


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def cache_salt(contract: LintContract, passes: Sequence[str]) -> str:
    salt = {
        "version": LINT_CACHE_VERSION,
        "contract": contract.digest(),
        "passes": sorted(passes),
    }
    if "snapcov" in passes:
        # the snapshot-coverage registry is contract for SNAP001/2 but
        # lives in code, not pyproject; fold it in so editing coverage
        # invalidates cached verdicts for every registered class
        from ..snap.fields import registry_digest

        salt["snapcov-registry"] = registry_digest()
    payload = json.dumps(salt, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """Load-mutate-save JSON store of per-file ``(findings, facts)``.

    Keys are paths as given on the command line (normalised to posix
    relative form when possible) so a checkout moved wholesale still
    hits.  ``facts`` is the JSON-serialisable dict from
    :func:`repro.lint.secflow.extract_facts` (or ``None`` for files
    that failed to parse) — cached so warm runs can still execute the
    tree-level passes without re-parsing anything.
    """

    def __init__(self, path: Optional[Path], salt: str) -> None:
        self.path = path
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self._files: Dict[str, Dict] = {}
        self._dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if (
                isinstance(data, dict)
                and data.get("salt") == salt
                and isinstance(data.get("files"), dict)
            ):
                self._files = data["files"]

    @staticmethod
    def key_for(path: Path) -> str:
        return path.as_posix()

    def get(
        self, path: Path, digest: str
    ) -> Optional[Tuple[List[Finding], Optional[Dict]]]:
        """Cached ``(findings, facts)`` for ``path`` at ``digest``, else None."""
        entry = self._files.get(self.key_for(path))
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            self.misses += 1
            return None
        try:
            findings = [
                Finding(str(f[0]), int(f[1]), str(f[2]), str(f[3]))
                for f in entry["findings"]
            ]
        except (KeyError, IndexError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, entry.get("facts")

    def put(
        self,
        path: Path,
        digest: str,
        findings: List[Finding],
        facts: Optional[Dict],
    ) -> None:
        self._files[self.key_for(path)] = {
            "hash": digest,
            "findings": [
                [f.path, f.line, f.rule, f.message] for f in findings
            ],
            "facts": facts,
        }
        self._dirty = True

    def prune(self, live: Sequence[Path]) -> None:
        """Drop entries for files no longer part of the linted set."""
        keep = {self.key_for(p) for p in live}
        dead = [key for key in self._files if key not in keep]
        for key in dead:
            del self._files[key]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": LINT_CACHE_VERSION,
            "salt": self.salt,
            "files": self._files,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        tmp.replace(self.path)
        self._dirty = False

    def stats(self) -> str:
        total = self.hits + self.misses
        pct = (100 * self.hits // total) if total else 0
        return f"cache {self.hits}/{total} hits ({pct}%)"
