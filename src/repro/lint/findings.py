"""Finding model, rule registry and per-line suppression pragmas.

Every lint pass — static or runtime — reports :class:`Finding` objects
carrying (path, line, rule id, message).  The rule registry maps each
rule id to a one-line description and the DESIGN.md invariant it
guards, so reports and docs stay in sync.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

__all__ = ["Finding", "Rule", "RULES", "SourceFile", "load_source"]


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered lint rule and the invariant it protects."""

    rule_id: str
    summary: str
    #: DESIGN.md invariant (or architectural property) the rule guards
    guards: str


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in [
        Rule(
            "DET001",
            "wall-clock read (time.time, datetime.now, ...)",
            "invariant #6: simulated time only; wall clocks break replay",
        ),
        Rule(
            "DET002",
            "entropy escape (os.urandom, uuid.uuid4, secrets, SystemRandom)",
            "invariant #6: all randomness must derive from the run seed",
        ),
        Rule(
            "DET003",
            "global random-module stream use",
            "invariant #6: shared global stream couples unrelated draws",
        ),
        Rule(
            "DET004",
            "raw random.Random() outside repro.sim.rng",
            "invariant #6: RngFactory is the only sanctioned seed deriver",
        ),
        Rule(
            "DET005",
            "iteration over set/frozenset values",
            "invariant #6: set order varies with PYTHONHASHSEED / history",
        ),
        Rule(
            "LAY001",
            "import violates the subsystem layering contract",
            "DESIGN.md import DAG (sim -> hw -> rmm/host -> experiments)",
        ),
        Rule(
            "LAY002",
            "forbidden subsystem combination imported together",
            "only repro.experiments composes workloads + host + rmm",
        ),
        Rule(
            "LAY003",
            "module imports a subsystem absent from the contract",
            "the layering table must name every subsystem explicitly",
        ),
        Rule(
            "UNIT001",
            "float literal used as a delay/schedule argument",
            "integer-ns clock: fractional nanoseconds do not exist",
        ),
        Rule(
            "UNIT002",
            "float-producing expression flows into a delay argument",
            "integer-ns clock: divisions/float() must be rounded first",
        ),
        Rule(
            "OBS001",
            "metric name not declared in repro.obs.catalog",
            "observability: every published metric is declared and typed",
        ),
        Rule(
            "OBS002",
            "metric published through the wrong accessor for its kind",
            "observability: one name, one kind — no shape disagreements",
        ),
        Rule(
            "SAN001",
            "same-seed replay diverged (in-process)",
            "invariant #6: same seed => identical traces and metrics",
        ),
        Rule(
            "SAN002",
            "run diverged under a different PYTHONHASHSEED",
            "invariant #6: results must not depend on hash ordering",
        ),
        Rule(
            "SAN003",
            "metrics diverged under permuted same-timestamp tie-breaking",
            "schedule races: results must not ride on arbitrary tie order",
        ),
    ]
}

_PRAGMA = re.compile(r"#\s*lint:\s*allow\(\s*([A-Z0-9_,\s]+?)\s*\)")


@dataclass
class SourceFile:
    """A parsed source file plus lint metadata."""

    path: Path
    text: str
    tree: ast.Module
    #: dotted module name when the file sits under a package root
    #: (``src/repro/hw/core.py`` -> ``repro.hw.core``), else None
    module: Optional[str]
    #: whether the file is a package ``__init__.py``
    is_package: bool
    #: line number -> rule ids suppressed on that line via pragma
    allow: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.allow.get(line, ())


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name by walking up through ``__init__.py`` parents."""
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    parts.reverse()
    return ".".join(parts)


def load_source(path: Path) -> SourceFile:
    """Parse one Python file into a :class:`SourceFile` (raises on syntax errors)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    allow: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            allow[lineno] = rules
    module = _module_name(path)
    return SourceFile(
        path=path,
        text=text,
        tree=tree,
        module=module,
        is_package=path.name == "__init__.py",
        allow=allow,
    )
