"""Finding model, rule registry and per-line suppression pragmas.

Every lint pass — static or runtime — reports :class:`Finding` objects
carrying (path, line, rule id, message).  The rule registry maps each
rule id to a one-line description, the DESIGN.md invariant it guards,
and the contract key that parameterizes it, so reports, ``--list-rules``
and the DESIGN.md §5.1 table all generate from one source.

Suppressions come in two spellings::

    x = wall_clock()  # lint: allow(DET001)            (legacy)
    x = wall_clock()  # lint: ignore[DET001] reason=calibration harness

Both suppress the named rule(s) on that line.  The ``ignore[...]``
form carries a machine-readable reason; an ``ignore`` pragma with no
parseable rule id is itself a finding (**SUP001**) — a suppression
that silently suppresses nothing (or everything) is how dead pragmas
accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "SourceFile",
    "load_source",
    "fingerprint",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding for baseline matching.

    Deliberately excludes the line number (baselined findings must
    survive unrelated edits above them) and normalises the path to
    repo-relative posix form.
    """
    import hashlib

    path = Path(finding.path).as_posix()
    for anchor in ("src/", "benchmarks/"):
        idx = path.find(anchor)
        if idx >= 0:
            path = path[idx:]
            break
    payload = f"{path}|{finding.rule}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule and the invariant it protects."""

    rule_id: str
    summary: str
    #: DESIGN.md invariant (or architectural property) the rule guards
    guards: str
    #: the pyproject/config key that parameterizes the rule ("built-in"
    #: when the rule has no knobs)
    contract: str = "built-in"


_LAYERING_KEY = "[tool.repro.lint.layering]"
_DOMAINS_KEY = "[tool.repro.lint.domains]"

RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in [
        Rule(
            "DET001",
            "wall-clock read (time.time, datetime.now, ...)",
            "invariant #6: simulated time only; wall clocks break replay",
        ),
        Rule(
            "DET002",
            "entropy escape (os.urandom, uuid.uuid4, secrets, SystemRandom)",
            "invariant #6: all randomness must derive from the run seed",
        ),
        Rule(
            "DET003",
            "global random-module stream use",
            "invariant #6: shared global stream couples unrelated draws",
        ),
        Rule(
            "DET004",
            "raw random.Random() outside repro.sim.rng",
            "invariant #6: RngFactory is the only sanctioned seed deriver",
            "[tool.repro.lint] rng-module",
        ),
        Rule(
            "DET005",
            "iteration over set/frozenset values",
            "invariant #6: set order varies with PYTHONHASHSEED / history",
        ),
        Rule(
            "LAY001",
            "import violates the subsystem layering contract",
            "DESIGN.md import DAG (sim -> hw -> rmm/host -> experiments)",
            _LAYERING_KEY,
        ),
        Rule(
            "LAY002",
            "forbidden subsystem combination imported together",
            "only repro.experiments composes workloads + host + rmm",
            "[tool.repro.lint.forbidden-combinations]",
        ),
        Rule(
            "LAY003",
            "module imports a subsystem absent from the contract",
            "the layering table must name every subsystem explicitly",
            _LAYERING_KEY,
        ),
        Rule(
            "UNIT001",
            "float literal used as a delay/schedule argument",
            "integer-ns clock: fractional nanoseconds do not exist",
        ),
        Rule(
            "UNIT002",
            "float-producing expression flows into a delay argument",
            "integer-ns clock: divisions/float() must be rounded first",
        ),
        Rule(
            "OBS001",
            "metric name not declared in repro.obs.catalog",
            "observability: every published metric is declared and typed",
            "repro.obs.catalog",
        ),
        Rule(
            "OBS002",
            "metric published through the wrong accessor for its kind",
            "observability: one name, one kind — no shape disagreements",
            "repro.obs.catalog",
        ),
        Rule(
            "SEC001",
            "cross-domain attribute access outside a sanctioned crossing",
            "core-gap contract: host/guest/rmm state never touched "
            "directly across domains (paper S3, runtime auditor's "
            "static twin)",
            f"{_DOMAINS_KEY} modules / crossing-*",
        ),
        Rule(
            "SEC002",
            "µarch structure in repro.hw missing a domain declaration",
            "threat-model completeness: every core-local structure of "
            "the paper's Table 1 is declared and auditable",
            f"{_DOMAINS_KEY} structures",
        ),
        Rule(
            "SEC003",
            "engine callback captures a cross-domain object",
            "core-gap contract: deferred callbacks must not smuggle "
            "live references across a domain boundary",
            f"{_DOMAINS_KEY} modules / crossing-*",
        ),
        Rule(
            "SEC004",
            "public __init__ re-exports a domain-private symbol",
            "core-gap contract: domain-private names stay behind the "
            "audited surfaces (re-export chains chased transitively)",
            f"{_DOMAINS_KEY} modules / crossing-*",
        ),
        Rule(
            "SEED001",
            "RngFactory constructed outside the declared seed roots",
            "invariant #6: one run seed reaches every stream via "
            "machine.rng.fork(...)/derive_seed",
            f"{_DOMAINS_KEY} seed-roots",
        ),
        Rule(
            "SEED002",
            "RNG stream namespace drawn from a foreign domain",
            "seed discipline: sharing one stream across domains couples "
            "their draws (and models a covert channel)",
            f"{_DOMAINS_KEY} streams",
        ),
        Rule(
            "SEED003",
            "stream/seed name lacks a literal namespace prefix",
            "seed discipline: unprefixed dynamic names reintroduce the "
            "pre-derive_seed collision class",
        ),
        Rule(
            "SNAP001",
            "live attribute of a registered class lacks snapshot coverage",
            "checkpoint/restore: every attribute of a registered class "
            "is captured or excluded deliberately, so snapshots cannot "
            "silently stop covering new state",
            "repro.snap.fields SNAP_FIELDS",
        ),
        Rule(
            "SNAP002",
            "stale snapshot-coverage entry (attribute or class is gone)",
            "checkpoint/restore: dead registry entries mask the next "
            "real coverage drift and must be deleted",
            "repro.snap.fields SNAP_FIELDS",
        ),
        Rule(
            "SUP001",
            "malformed suppression pragma (ignore without a rule id)",
            "suppression policy: every ignore names its rule(s) and "
            "carries a reason",
        ),
        Rule(
            "BASE001",
            "baseline entry expired but its finding is still present",
            "suppression policy: grandfathered findings carry an expiry; "
            "fix the finding or renew the entry deliberately",
            "lint-baseline.toml",
        ),
        Rule(
            "BASE002",
            "stale baseline entry matches no current finding",
            "suppression policy: fixed findings leave the baseline so "
            "it cannot mask future regressions",
            "lint-baseline.toml",
        ),
        Rule(
            "SAN001",
            "same-seed replay diverged (in-process)",
            "invariant #6: same seed => identical traces and metrics",
        ),
        Rule(
            "SAN002",
            "run diverged under a different PYTHONHASHSEED",
            "invariant #6: results must not depend on hash ordering",
        ),
        Rule(
            "SAN003",
            "metrics diverged under permuted same-timestamp tie-breaking",
            "schedule races: results must not ride on arbitrary tie order",
        ),
    ]
}

_PRAGMA_ALLOW = re.compile(r"#\s*lint:\s*allow\(\s*([A-Z0-9_,\s]+?)\s*\)")
_PRAGMA_IGNORE = re.compile(
    r"#\s*lint:\s*ignore(?:\[\s*([A-Z0-9_,\s]*?)\s*\])?"
    r"(?:\s+reason=(?P<reason>[^#]*))?"
)
_RULE_ID = re.compile(r"^[A-Z]{2,8}[0-9]{3}$")


@dataclass
class SourceFile:
    """A parsed source file plus lint metadata."""

    path: Path
    text: str
    tree: ast.Module
    #: dotted module name when the file sits under a package root
    #: (``src/repro/hw/core.py`` -> ``repro.hw.core``), else None
    module: Optional[str]
    #: whether the file is a package ``__init__.py``
    is_package: bool
    #: line number -> rule ids suppressed on that line via pragma
    allow: Dict[int, Set[str]] = field(default_factory=dict)
    #: line number -> suppression reason (ignore[...] reason=... form)
    reasons: Dict[int, str] = field(default_factory=dict)
    #: lines carrying an ignore pragma with no valid rule id (SUP001)
    bad_pragmas: List[int] = field(default_factory=list)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.allow.get(line, ())


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name by walking up through ``__init__.py`` parents."""
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    parts.reverse()
    return ".".join(parts)


def _parse_pragmas(
    text: str,
) -> tuple:
    allow: Dict[int, Set[str]] = {}
    reasons: Dict[int, str] = {}
    bad: List[int] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA_ALLOW.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            allow.setdefault(lineno, set()).update(rules)
        match = _PRAGMA_IGNORE.search(line)
        if match:
            raw = match.group(1)
            rules = {
                r.strip()
                for r in (raw or "").split(",")
                if r.strip() and _RULE_ID.match(r.strip())
            }
            if not rules:
                bad.append(lineno)
            else:
                allow.setdefault(lineno, set()).update(rules)
                reason = (match.group("reason") or "").strip()
                if reason:
                    reasons[lineno] = reason
    return allow, reasons, bad


def load_source(path: Path) -> SourceFile:
    """Parse one Python file into a :class:`SourceFile` (raises on syntax errors)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    allow, reasons, bad = _parse_pragmas(text)
    module = _module_name(path)
    return SourceFile(
        path=path,
        text=text,
        tree=tree,
        module=module,
        is_package=path.name == "__init__.py",
        allow=allow,
        reasons=reasons,
        bad_pragmas=bad,
    )
