"""The cross-domain isolation contract (data for the secflow pass).

The paper's core-gap argument is *structural*: host, guest and monitor
(RMM) never share core-local microarchitectural state, and every
legitimate interaction crosses one of a handful of audited surfaces
(RMI calls, the shared-memory RPC ports, SMC).  ``repro.security``
checks that claim at runtime over simulated schedules; this module
carries the same contract as *data* so :mod:`repro.lint.secflow` can
check it statically, before a single event is simulated.

The tables live in ``[tool.repro.lint.domains]`` of ``pyproject.toml``:

``modules``
    dotted module prefix -> owning :class:`SecurityDomain` name
    (``host`` / ``guest`` / ``rmm`` / ``shared``).  Longest prefix
    wins, so ``repro.guest`` can be ``guest`` while
    ``repro.guest.actions`` (the exit ABI both sides read) is
    ``shared``.

``structures``
    ``"module:ClassName"`` -> domain, for the core-local µarch
    structures in ``repro.hw`` (the paper's Table 1 list).  Any class
    under ``repro.hw`` exposing ``domains_present`` — the runtime
    auditor's duck type — must appear here (SEC002).

``crossing-surfaces``
    module prefixes whose symbols *are* the sanctioned crossing
    points: accessing them from any domain is legitimate by design
    (they are what the runtime auditor audits).

``crossing-roots``
    module prefixes allowed to reach across domains freely: the
    composition roots (experiments, fleet) and the tooling that
    inspects every domain by design (security auditor, lint itself).

``streams``
    RNG stream-namespace prefix (the token before the first ``:`` in a
    ``stream``/``fork`` name) -> owning domain, for SEED002.

Note on layering (deliberate): the canonical domain vocabulary comes
from :mod:`repro.isa.worlds` — a types-only module with no imports —
NOT from ``repro.security``.  Importing the auditor here would create
a ``lint -> security -> hw`` edge for the sake of four names; the
types-only module gives us the same single source of truth with no
cycle risk (see ``[tool.repro.lint.layering]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.worlds import HOST_DOMAIN, MONITOR_DOMAIN, World

__all__ = [
    "DomainContract",
    "VALID_DOMAINS",
    "SHARED",
    "DEFAULT_DOMAIN_MODULES",
    "DEFAULT_STRUCTURES",
    "DEFAULT_CROSSING_SURFACES",
    "DEFAULT_CROSSING_ROOTS",
    "DEFAULT_STREAMS",
    "DEFAULT_SEED_ROOTS",
]

#: state belonging to no single distrusting principal (hardware that is
#: multi-domain by nature, or an ABI surface both sides read)
SHARED = "shared"

#: the three mutually distrusting principals of the paper's threat
#: model plus "shared".  Anchored to the canonical objects in
#: repro.isa.worlds so the vocabulary cannot drift from the runtime
#: auditor's: "host" is HOST_DOMAIN by name, "guest" covers the
#: realm_domain(n) principals (World.REALM, distrusted), and "rmm" is
#: the monitor (World.REALM, trusted_by_all — hence not "guest").
assert HOST_DOMAIN.world is World.NORMAL
assert MONITOR_DOMAIN.world is World.REALM and MONITOR_DOMAIN.trusted_by_all
VALID_DOMAINS = frozenset({HOST_DOMAIN.name, "guest", "rmm", SHARED})


DEFAULT_DOMAIN_MODULES: Dict[str, str] = {
    "repro.host": "host",
    "repro.guest": "guest",
    # the action/exit ABI is the run-page payload both sides parse: a
    # sanctioned shared surface, not guest-private state
    "repro.guest.actions": SHARED,
    "repro.guest.vm": SHARED,
    "repro.rmm": "rmm",
    "repro.hw": SHARED,
}

DEFAULT_STRUCTURES: Dict[str, str] = {
    "repro.hw.cache:SetAssociativeCache": SHARED,
    "repro.hw.tlb:Tlb": SHARED,
    "repro.hw.branch:BranchPredictor": SHARED,
    "repro.hw.uarch:StoreBuffer": SHARED,
    "repro.hw.uarch:CoreUarchState": SHARED,
}

DEFAULT_CROSSING_SURFACES: List[str] = [
    "repro.rmm.rmi",
    "repro.rmm.core_gap",
    "repro.rmm.attestation",
    "repro.rpc",
    "repro.isa.smc",
]

DEFAULT_CROSSING_ROOTS: List[str] = [
    "repro.experiments",
    "repro.fleet",
    "repro.faults",
    "repro.security",
    "repro.lint",
    "repro.obs",
]

DEFAULT_STREAMS: Dict[str, str] = {
    "fault": SHARED,
    "arrivals": SHARED,
    "fleet-server": SHARED,
    "fleet-sweep": SHARED,
}

#: modules allowed to construct a root RngFactory (everything else must
#: fork an existing factory, so every draw traces back to the run seed)
DEFAULT_SEED_ROOTS: List[str] = [
    "repro.sim.rng",
    "repro.experiments.system",
]


@dataclass
class DomainContract:
    """Who owns what, and where crossing is sanctioned."""

    modules: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_DOMAIN_MODULES)
    )
    structures: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_STRUCTURES)
    )
    crossing_surfaces: List[str] = field(
        default_factory=lambda: list(DEFAULT_CROSSING_SURFACES)
    )
    crossing_roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_CROSSING_ROOTS)
    )
    streams: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_STREAMS)
    )
    seed_roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_SEED_ROOTS)
    )

    def __post_init__(self) -> None:
        for table in (self.modules, self.structures, self.streams):
            for key, domain in sorted(table.items()):
                if domain not in VALID_DOMAINS:
                    raise ValueError(
                        f"[tool.repro.lint.domains]: {key!r} declares "
                        f"unknown domain {domain!r}; valid: "
                        f"{', '.join(sorted(VALID_DOMAINS))}"
                    )

    # ------------------------------------------------------------------
    # lookups (all longest-prefix over dotted names)
    # ------------------------------------------------------------------

    @staticmethod
    def _longest_prefix(
        dotted: str, table: Dict[str, str]
    ) -> Optional[str]:
        best: Optional[str] = None
        for key in table:
            if dotted == key or dotted.startswith(key + "."):
                if best is None or len(key) > len(best):
                    best = key
        return best

    def domain_of(self, dotted: str) -> Optional[str]:
        """Owning domain of a dotted module (or module-qualified symbol)."""
        key = self._longest_prefix(dotted, self.modules)
        return None if key is None else self.modules[key]

    def is_private(self, dotted: str) -> bool:
        """True when ``dotted`` belongs to one distrusting principal."""
        domain = self.domain_of(dotted)
        return domain is not None and domain != SHARED

    def is_crossing_surface(self, dotted: str) -> bool:
        return any(
            dotted == prefix or dotted.startswith(prefix + ".")
            for prefix in self.crossing_surfaces
        )

    def is_crossing_root(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.crossing_roots
        )

    def is_seed_root(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.seed_roots
        )

    def stream_domain(self, namespace: str) -> Optional[str]:
        """Owning domain of an RNG stream namespace, if declared."""
        return self.streams.get(namespace)

    def structure_domain(self, module: str, cls: str) -> Optional[str]:
        return self.structures.get(f"{module}:{cls}")
