"""Granule delegation state machine.

Physical memory moves between the host and realm world in 4 KiB
granules.  The host *delegates* a granule (making it inaccessible to
normal world), after which the RMM may consume it as realm metadata
(realm descriptor, REC, RTT) or guest data.  Undelegation is only legal
once the granule is unused, and the RMM scrubs contents before the host
regains access -- the enforcement half lives in the hardware GPT model
(:mod:`repro.hw.memory`); this module is the RMM's bookkeeping and
policy, mirroring the state machine in the RMM specification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..hw.memory import GRANULE_SIZE, PhysicalMemory
from ..isa.worlds import World

__all__ = ["GranuleState", "GranuleError", "GranuleTracker", "GRANULE_SIZE"]


class GranuleState(enum.Enum):
    """RMM-visible lifecycle states of a granule."""

    UNDELEGATED = "undelegated"  # normal-world memory
    DELEGATED = "delegated"  # realm PAS, not yet used
    RD = "rd"  # realm descriptor
    REC = "rec"  # realm execution context (vCPU state)
    RTT = "rtt"  # realm translation table
    DATA = "data"  # guest data page
    RUN = "run"  # shared run page (stays in normal PAS)


#: states reachable from DELEGATED when the RMM consumes the granule
_CONSUMED = {
    GranuleState.RD,
    GranuleState.REC,
    GranuleState.RTT,
    GranuleState.DATA,
}


class GranuleError(Exception):
    """An illegal granule state transition (returned to the host as an
    RMI error; never fatal to the RMM)."""


@dataclass
class Granule:
    """Tracked state of one granule."""

    addr: int
    state: GranuleState = GranuleState.UNDELEGATED
    owner_realm: Optional[int] = None


class GranuleTracker:
    """The RMM's granule ledger, kept consistent with the hardware GPT."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self._granules: Dict[int, Granule] = {}
        self.delegate_count = 0
        self.undelegate_count = 0

    def _aligned(self, addr: int) -> int:
        if addr % GRANULE_SIZE:
            raise GranuleError(f"address {addr:#x} not granule aligned")
        return addr

    def get(self, addr: int) -> Granule:
        addr = self._aligned(addr)
        if addr not in self._granules:
            self._granules[addr] = Granule(addr)
        return self._granules[addr]

    def state_of(self, addr: int) -> GranuleState:
        return self.get(addr).state

    # -- host-initiated transitions ---------------------------------------

    def delegate(self, addr: int) -> None:
        """Host gives a granule to realm world."""
        granule = self.get(addr)
        if granule.state is not GranuleState.UNDELEGATED:
            raise GranuleError(
                f"delegate: granule {addr:#x} is {granule.state.value}"
            )
        granule.state = GranuleState.DELEGATED
        self.memory.set_pas(addr, World.REALM)
        self.delegate_count += 1

    def undelegate(self, addr: int) -> None:
        """Host reclaims a granule; contents are scrubbed first."""
        granule = self.get(addr)
        if granule.state is not GranuleState.DELEGATED:
            raise GranuleError(
                f"undelegate: granule {addr:#x} is {granule.state.value} "
                "(must be unused/delegated)"
            )
        self.memory.scrub_granule(addr)
        self.memory.set_pas(addr, World.NORMAL)
        granule.state = GranuleState.UNDELEGATED
        granule.owner_realm = None
        self.undelegate_count += 1

    # -- RMM-internal transitions ------------------------------------------

    def consume(self, addr: int, new_state: GranuleState, realm_id: int) -> None:
        """Turn a delegated granule into realm metadata or data."""
        if new_state not in _CONSUMED:
            raise GranuleError(f"cannot consume into {new_state.value}")
        granule = self.get(addr)
        if granule.state is not GranuleState.DELEGATED:
            raise GranuleError(
                f"consume: granule {addr:#x} is {granule.state.value}"
            )
        granule.state = new_state
        granule.owner_realm = realm_id

    def release(self, addr: int) -> None:
        """Return a consumed granule to the plain delegated state
        (e.g. on DATA_DESTROY / realm teardown)."""
        granule = self.get(addr)
        if granule.state not in _CONSUMED:
            raise GranuleError(
                f"release: granule {addr:#x} is {granule.state.value}"
            )
        self.memory.scrub_granule(addr)
        granule.state = GranuleState.DELEGATED
        granule.owner_realm = None

    # -- queries -------------------------------------------------------------

    def owned_by(self, realm_id: int):
        return [
            g for g in self._granules.values() if g.owner_realm == realm_id
        ]

    def count_in_state(self, state: GranuleState) -> int:
        return sum(1 for g in self._granules.values() if g.state is state)
