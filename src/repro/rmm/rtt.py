"""Realm translation tables (stage-2 page tables managed by the RMM).

The RMM owns the second-stage translation for every realm: the host
*requests* mappings (it still manages physical memory) but the RMM
validates and installs them, which is what keeps one realm's pages out
of another's address space.  We model a radix tree over intermediate
physical addresses (IPA) with 4 KiB leaves and table granules tracked
through :class:`repro.rmm.granule.GranuleTracker`.

Levels follow the Arm stage-2 layout with a 4-level walk (L0..L3),
9 bits per level, 12-bit pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .granule import GranuleState, GranuleTracker

__all__ = ["RttError", "RttEntry", "RealmTranslationTable"]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
BITS_PER_LEVEL = 9
LEAF_LEVEL = 3


class RttError(Exception):
    """Illegal RTT operation (surfaced to the host as an RMI error)."""


@dataclass
class RttEntry:
    """A leaf mapping: IPA page -> physical granule."""

    ipa: int
    pa: int
    ripas: str = "ram"  # realm IPA state: "ram" or "empty" or "destroyed"


def _level_index(ipa: int, level: int) -> int:
    shift = PAGE_SHIFT + BITS_PER_LEVEL * (LEAF_LEVEL - level)
    return (ipa >> shift) & ((1 << BITS_PER_LEVEL) - 1)


class RealmTranslationTable:
    """One realm's stage-2 translation state.

    The table structure is modelled as a dict of table granules keyed by
    (level, table-base-ipa); leaves are explicit :class:`RttEntry`
    records.  The host must provide a delegated granule for each new
    table level (RTT_CREATE), exactly as in the RMM spec.
    """

    def __init__(self, realm_id: int, granules: GranuleTracker):
        self.realm_id = realm_id
        self.granules = granules
        self._leaves: Dict[int, RttEntry] = {}
        #: table granules by (level, aligned ipa)
        self._tables: Dict[Tuple[int, int], int] = {}
        self.map_count = 0
        self.unmap_count = 0

    # -- table management ----------------------------------------------------

    def _table_key(self, ipa: int, level: int) -> Tuple[int, int]:
        shift = PAGE_SHIFT + BITS_PER_LEVEL * (LEAF_LEVEL - level + 1)
        return (level, (ipa >> shift) << shift)

    def has_table(self, ipa: int, level: int) -> bool:
        if level == 0:
            return True  # root table is part of the realm descriptor
        return self._table_key(ipa, level) in self._tables

    def create_table(self, ipa: int, level: int, table_granule: int) -> None:
        """RTT_CREATE: install a table granule for one level of the walk."""
        if not 1 <= level <= LEAF_LEVEL:
            raise RttError(f"invalid RTT level {level}")
        key = self._table_key(ipa, level)
        if key in self._tables:
            raise RttError(f"RTT table already exists at level {level}")
        if level > 1 and not self.has_table(ipa, level - 1):
            raise RttError(
                f"parent RTT level {level - 1} missing for ipa {ipa:#x}"
            )
        self.granules.consume(table_granule, GranuleState.RTT, self.realm_id)
        self._tables[key] = table_granule

    def destroy_table(self, ipa: int, level: int) -> int:
        """RTT_DESTROY: remove an empty table, releasing its granule."""
        key = self._table_key(ipa, level)
        if key not in self._tables:
            raise RttError(f"no RTT table at level {level} for {ipa:#x}")
        base = key[1]
        span = 1 << (PAGE_SHIFT + BITS_PER_LEVEL * (LEAF_LEVEL - level + 1))
        for leaf_ipa in self._leaves:
            if base <= leaf_ipa < base + span:
                raise RttError("RTT table still has live mappings")
        granule = self._tables.pop(key)
        self.granules.release(granule)
        return granule

    def _require_walk(self, ipa: int) -> None:
        for level in range(1, LEAF_LEVEL + 1):
            if not self.has_table(ipa, level):
                raise RttError(
                    f"RTT walk fault: missing level-{level} table for "
                    f"ipa {ipa:#x}"
                )

    # -- leaf mappings ---------------------------------------------------------

    def map_page(self, ipa: int, pa: int) -> None:
        """DATA_CREATE/MAP: install a leaf mapping to a DATA granule."""
        if ipa % PAGE_SIZE or pa % PAGE_SIZE:
            raise RttError("ipa and pa must be page aligned")
        self._require_walk(ipa)
        if ipa in self._leaves:
            raise RttError(f"ipa {ipa:#x} already mapped")
        state = self.granules.state_of(pa)
        if state is not GranuleState.DATA:
            raise RttError(
                f"pa {pa:#x} is {state.value}, expected a DATA granule"
            )
        owner = self.granules.get(pa).owner_realm
        if owner != self.realm_id:
            raise RttError(
                f"pa {pa:#x} belongs to realm {owner}, not {self.realm_id}"
            )
        self._leaves[ipa] = RttEntry(ipa=ipa, pa=pa)
        self.map_count += 1

    def unmap_page(self, ipa: int) -> int:
        """Remove a leaf mapping; returns the PA it pointed to."""
        entry = self._leaves.pop(ipa, None)
        if entry is None:
            raise RttError(f"ipa {ipa:#x} not mapped")
        self.unmap_count += 1
        return entry.pa

    def walk(self, ipa: int) -> Optional[RttEntry]:
        """Translate an IPA; None on fault."""
        return self._leaves.get(ipa & ~(PAGE_SIZE - 1))

    def mapped_pages(self) -> Iterator[RttEntry]:
        return iter(self._leaves.values())

    @property
    def n_mapped(self) -> int:
        return len(self._leaves)

    def destroy_all(self) -> None:
        """Realm teardown: release every data page and table granule."""
        for entry in list(self._leaves.values()):
            self.granules.release(entry.pa)
        self._leaves.clear()
        for granule in self._tables.values():
            self.granules.release(granule)
        self._tables.clear()
