"""Realm and REC (realm execution context) lifecycle.

A *realm* is one confidential VM; a *REC* is one of its vCPUs as seen
by the RMM.  The host drives the lifecycle through RMI calls but the
RMM validates every step: a realm must be NEW while being populated,
ACTIVE to run, and RECs can only be entered when the realm is active.

Core-gapping adds one field to the REC: the physical core it is bound
to from its first dispatch until destruction (S3, S4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..isa.worlds import SecurityDomain, realm_domain
from .granule import GranuleState, GranuleTracker
from .rtt import RealmTranslationTable

__all__ = ["RealmState", "RecState", "Rec", "Realm", "RealmError"]


class RealmError(Exception):
    """Illegal realm lifecycle operation (an RMI error to the host)."""


class RealmState(enum.Enum):
    NEW = "new"  # created, being populated (measurements accumulate)
    ACTIVE = "active"  # attested boot image sealed; may run
    SYSTEM_OFF = "system_off"  # guest shut itself down


class RecState(enum.Enum):
    READY = "ready"  # runnable, not currently entered
    RUNNING = "running"  # inside REC_ENTER on some core
    DESTROYED = "destroyed"


@dataclass
class Rec:
    """One realm execution context (vCPU)."""

    realm_id: int
    index: int
    granule_addr: int
    state: RecState = RecState.READY
    #: core-gapping: physical core this REC is bound to (None = unbound;
    #: set at first dispatch and immutable until destruction)
    bound_core: Optional[int] = None
    enter_count: int = 0
    exit_count: int = 0
    #: virtual interrupt state (set at REC_CREATE)
    vgic: Optional[object] = None
    #: the guest vCPU runtime (the realm's measured contents; attached
    #: by the system builder standing in for DATA_CREATE of a real image)
    runtime: Optional[object] = None
    #: persisted guest generator + resume value across run calls
    gen: Optional[object] = None
    pending_send: Optional[object] = None
    #: the last exit was an MMIO read whose data arrives on re-entry
    last_exit_mmio_read: bool = False

    @property
    def name(self) -> str:
        return f"rec{self.realm_id}.{self.index}"


class Realm:
    """One confidential VM as tracked by the RMM."""

    def __init__(
        self,
        realm_id: int,
        rd_granule: int,
        granules: GranuleTracker,
        vmid: int,
    ):
        self.realm_id = realm_id
        self.vmid = vmid
        self.rd_granule = rd_granule
        self.state = RealmState.NEW
        self.rtt = RealmTranslationTable(realm_id, granules)
        self.recs: List[Rec] = []
        self.granules = granules
        self.domain: SecurityDomain = realm_domain(realm_id)
        #: rolling measurement of initial contents (attestation)
        self.measurement: int = 0

    # -- lifecycle -------------------------------------------------------------

    def require_state(self, *states: RealmState) -> None:
        if self.state not in states:
            expect = "/".join(s.value for s in states)
            raise RealmError(
                f"realm {self.realm_id} is {self.state.value}, "
                f"expected {expect}"
            )

    def activate(self) -> None:
        """Seal the initial image; the realm becomes runnable."""
        self.require_state(RealmState.NEW)
        self.state = RealmState.ACTIVE

    def system_off(self) -> None:
        self.require_state(RealmState.ACTIVE)
        self.state = RealmState.SYSTEM_OFF

    # -- measurements ------------------------------------------------------------

    def extend_measurement(self, value: int) -> None:
        """Fold initial-content data into the realm measurement."""
        self.require_state(RealmState.NEW)
        # simple iterated hash stand-in (order sensitive, collision poor
        # but deterministic -- attestation.py applies a real hash on top)
        self.measurement = hash((self.measurement, value)) & (2**64 - 1)

    # -- RECs -----------------------------------------------------------------

    def create_rec(self, granule_addr: int) -> Rec:
        self.require_state(RealmState.NEW)
        self.granules.consume(granule_addr, GranuleState.REC, self.realm_id)
        rec = Rec(
            realm_id=self.realm_id,
            index=len(self.recs),
            granule_addr=granule_addr,
        )
        self.recs.append(rec)
        self.extend_measurement(0x7EC0 + rec.index)
        return rec

    def rec(self, index: int) -> Rec:
        if not 0 <= index < len(self.recs):
            raise RealmError(f"no REC {index} in realm {self.realm_id}")
        return self.recs[index]

    def destroy_rec(self, index: int) -> None:
        rec = self.rec(index)
        if rec.state is RecState.RUNNING:
            raise RealmError(f"{rec.name} is running")
        rec.state = RecState.DESTROYED
        rec.bound_core = None
        self.granules.release(rec.granule_addr)

    def live_recs(self) -> List[Rec]:
        return [r for r in self.recs if r.state is not RecState.DESTROYED]

    def destroy(self) -> None:
        """Tear the realm down, releasing all granules."""
        for rec in self.live_recs():
            if rec.state is RecState.RUNNING:
                raise RealmError("cannot destroy realm with running RECs")
        for rec in self.live_recs():
            self.destroy_rec(rec.index)
        self.rtt.destroy_all()
        self.granules.release(self.rd_granule)
