"""Attestation: measuring the RMM and realms, issuing tokens.

The paper's argument for why core-gapping is *trustworthy* rests on
attestation: the modified RMM's measurement is included in the chain of
trust, so a guest can refuse to run under a non-core-gapped monitor.
(S6.1 notes that TDX likewise includes the TDX module measurement in the
attestation signature -- there is no technical reason only vendor
firmware could be attested.)

We model a platform root of trust that signs tokens binding together:
the RMM image measurement (including whether it is the core-gapped
build), the realm's initial-content measurement, and a guest-supplied
challenge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "RmmImage",
    "AttestationToken",
    "PlatformRootOfTrust",
    "verify_token",
    "BASELINE_RMM",
    "CORE_GAPPED_RMM",
]


def _hash(*parts) -> int:
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:16], "big")


@dataclass(frozen=True)
class RmmImage:
    """An RMM build, identified by its measured image."""

    name: str
    version: str
    core_gapped: bool

    @property
    def measurement(self) -> int:
        return _hash("rmm", self.name, self.version, self.core_gapped)


BASELINE_RMM = RmmImage("tf-rmm", "0.3.0", core_gapped=False)
CORE_GAPPED_RMM = RmmImage("tf-rmm-coregap", "0.3.0+cg", core_gapped=True)


@dataclass(frozen=True)
class AttestationToken:
    """A signed attestation report."""

    platform_id: int
    rmm_measurement: int
    rmm_core_gapped: bool
    realm_measurement: int
    challenge: int
    signature: int

    def payload(self) -> int:
        return _hash(
            self.platform_id,
            self.rmm_measurement,
            self.rmm_core_gapped,
            self.realm_measurement,
            self.challenge,
        )


class PlatformRootOfTrust:
    """The vendor-rooted signer (a secure element / EL3 firmware)."""

    def __init__(self, platform_id: int = 0xA3A3):
        self.platform_id = platform_id
        self._key = _hash("platform-key", platform_id)

    def sign_token(
        self, rmm: RmmImage, realm_measurement: int, challenge: int
    ) -> AttestationToken:
        payload = _hash(
            self.platform_id,
            rmm.measurement,
            rmm.core_gapped,
            realm_measurement,
            challenge,
        )
        return AttestationToken(
            platform_id=self.platform_id,
            rmm_measurement=rmm.measurement,
            rmm_core_gapped=rmm.core_gapped,
            realm_measurement=realm_measurement,
            challenge=challenge,
            signature=_hash(self._key, payload),
        )

    def public_verifier(self) -> "TokenVerifier":
        return TokenVerifier(self._key)


class TokenVerifier:
    """Checks token signatures (models certificate-chain validation)."""

    def __init__(self, key: int):
        self._key = key

    def verify(self, token: AttestationToken) -> bool:
        return token.signature == _hash(self._key, token.payload())


def verify_token(
    token: AttestationToken,
    verifier: TokenVerifier,
    expected_realm_measurement: Optional[int] = None,
    require_core_gapped: bool = False,
) -> bool:
    """Guest-side policy check on an attestation token."""
    if not verifier.verify(token):
        return False
    if require_core_gapped and not token.rmm_core_gapped:
        return False
    if (
        expected_realm_measurement is not None
        and token.realm_measurement != expected_realm_measurement
    ):
        return False
    return True
