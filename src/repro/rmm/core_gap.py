"""Core-gapping: dedicated RMM cores that never return to the host.

This is the paper's central mechanism (S3, S4.2, S4.3).  Once the host
hands a core to the monitor (after hotplugging it "offline"), a
:class:`DedicatedCore` loop owns it for the life of the CVM:

* it binds exactly one REC to the core at first dispatch and refuses any
  attempt to run that REC elsewhere or another REC here
  (``RmiStatus.ERROR_CORE_BINDING``);
* run calls arrive as asynchronous cross-core RPCs; VM exits are
  *reported* by writing the exit record to shared memory and raising the
  CVM-exit IPI -- execution never switches back to normal world on this
  core, so no flush is ever needed and no host instruction ever shares
  the core's microarchitectural state with the guest;
* with interrupt delegation enabled, the virtual timer and virtual IPIs
  are emulated right here (S4.4), eliminating the dominant exit causes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..costs import CostModel
from ..guest.actions import (
    Compute,
    ComputeSpan,
    DeviceDoorbell,
    MmioRead,
    MmioWrite,
    PowerOff,
    SendIpi,
    SetTimer,
    Wfi,
    WaitIo,
)
from ..guest.vcpu import VIPI_VIRQ, VTIMER_VIRQ
from ..hw.core import ExecStatus, PhysicalCore
from ..hw.gic import VTIMER_PPI
from ..hw.policy import IsolationPolicy, resolve_policy
from ..isa.worlds import MONITOR_DOMAIN, World
from ..rpc.ports import AsyncRpcPort, RpcRequest, SyncRpcPort
from ..sim.engine import Event, SimulationError
from ..sim.sync import Channel
from .realm import RealmState, Rec, RecState
from .rmi import ExitReason, RecExit, RecRunPage, RmiCommand, RmiResult, RmiStatus
from .monitor import Rmm

__all__ = [
    "HOST_KICK_SGI",
    "RMM_VIPI_SGI",
    "RunCall",
    "RmiCall",
    "ReleaseCall",
    "RebindCall",
    "UnbindCall",
    "DedicatedCore",
    "CoreGapEngine",
]

#: host -> dedicated core: "please exit the REC so I can inject/interact"
HOST_KICK_SGI = 9
#: dedicated core -> dedicated core: "I queued a virtual IPI for your guest"
RMM_VIPI_SGI = 10


@dataclass
class RunCall:
    """A REC_ENTER submitted over the async port."""

    port: AsyncRpcPort
    realm_id: int
    rec_index: int
    page: RecRunPage


@dataclass
class RmiCall:
    """A short synchronous RMI call (busy-waited by the host)."""

    request: RpcRequest  # payload = (RmiCommand, args)


@dataclass
class ReleaseCall:
    """Host (planner) asks for this core back."""

    done: Event


@dataclass
class RebindCall:
    """Extension (S3 future work): move a REC's binding to another
    dedicated core at a coarse time scale, monitor-mediated.

    Sent to the REC's *current* core, which validates, scrubs its own
    microarchitectural state, and hands the binding over.  The security
    argument is unchanged: both cores are dedicated (host-invisible),
    the old core is flushed before it can serve anyone else, and the
    binding is never ambiguous -- run calls race-free because the REC
    must be READY (no run outstanding) for the rebind to be accepted.
    """

    realm_id: int
    rec_index: int
    target_core: int
    done: Event


@dataclass
class UnbindCall:
    """Detach a (READY, parked) REC from this core without rebinding.

    The vcpu-autoscaler's shrink half: the planner parks the vCPU
    thread host-side, asks the REC's core to drop the binding, then
    releases the core back to the host.  Mirrors :class:`RebindCall`'s
    validation — the REC must be READY (no run call outstanding) and
    bound *here* — and like every ownership change the core is scrubbed
    (``policy.on_reassignment``) before it can carry anyone else.  The
    REC keeps its runtime state; a later grow re-binds it to a fresh
    dedicated core at its next first dispatch.
    """

    realm_id: int
    rec_index: int
    done: Event


class DedicatedCore:
    """One physical core dedicated to the monitor and (at most) one REC."""

    def __init__(self, engine: "CoreGapEngine", core: PhysicalCore):
        self.engine = engine
        self.rmm = engine.rmm
        self.costs: CostModel = engine.costs
        self.core = core
        self.sim = core.sim
        self.tracer = core.tracer
        self.inbox = Channel(f"rmm-inbox{core.index}")
        self.bound_rec: Optional[Rec] = None
        self.guest_domain = None
        self.released = False
        self.runs_handled = 0
        self.rmi_handled = 0
        #: fault injection (repro.faults): the core hard-stalls after
        #: completing this many run calls -- it silently swallows all
        #: further inbox traffic, like a hung or fused-off core.  The
        #: host must detect this via its own timeouts (invariant #2:
        #: the failure surfaces host-side, never guest-side).
        self.fail_after_runs: Optional[int] = None
        self.failed = False

    # ------------------------------------------------------------------
    # the dedicated-core loop
    # ------------------------------------------------------------------

    def loop(self):
        """Poll the shared-memory inbox; handle RMI and run calls.

        An idle dedicated core busy-polls its inbox (S4.3) -- it has
        nothing else to do, and polling minimises call latency.
        """
        core = self.core
        while not self.released:
            item = yield from self.inbox.get()
            if (
                self.fail_after_runs is not None
                and self.runs_handled >= self.fail_after_runs
            ):
                self.failed = True
            if self.failed:
                # a dead core answers nothing: run slots stay submitted,
                # sync requests never fire -- the host's retry/timeout
                # hardening must notice
                self.tracer.count("rmm_core_dead_drop")
                continue
            yield from core.execute(
                MONITOR_DOMAIN,
                self.costs.rpc_poll_detect_ns + self.costs.rpc_read_ns,
                interruptible=False,
            )
            if isinstance(item, RmiCall):
                yield from self._handle_rmi(item)
            elif isinstance(item, RunCall):
                yield from self._handle_run(item)
            elif isinstance(item, RebindCall):
                yield from self._handle_rebind(item)
            elif isinstance(item, UnbindCall):
                yield from self._handle_unbind(item)
            elif isinstance(item, ReleaseCall):
                self._handle_release(item)
            else:
                raise SimulationError(f"bad inbox item {item!r}")
        core.set_world(World.NORMAL)

    def _handle_rmi(self, call: RmiCall):
        cmd, args = call.request.payload
        self.rmi_handled += 1
        yield from self.core.execute(
            MONITOR_DOMAIN, self.rmm.handler_cost_ns(cmd), interruptible=False
        )
        result = self.rmm.handle_rmi(cmd, args)
        yield from self.core.execute(
            MONITOR_DOMAIN, self.costs.rpc_write_ns, interruptible=False
        )
        SyncRpcPort.respond(call.request, result)

    def _handle_rebind(self, call: RebindCall):
        """Move our REC's binding to another dedicated core (extension).

        Validation mirrors run-call binding enforcement; on success this
        core is scrubbed and left unbound (ready for release or a new
        first dispatch), and the target core inherits the binding.
        """
        yield from self.core.execute(
            MONITOR_DOMAIN, 2_000, interruptible=False
        )
        try:
            rec = self.rmm.find_rec(call.realm_id, call.rec_index)
        except Exception as exc:  # noqa: BLE001 - host input error
            call.done.fire(RmiResult(RmiStatus.ERROR_INPUT, str(exc)))
            return
        target = self.engine.dedicated.get(call.target_core)
        if rec is not self.bound_rec:
            call.done.fire(
                RmiResult(
                    RmiStatus.ERROR_CORE_BINDING,
                    f"{rec.name} is not bound to core {self.core.index}",
                )
            )
            return
        if rec.state is not RecState.READY:
            call.done.fire(
                RmiResult(RmiStatus.ERROR_REC, f"{rec.name} is running")
            )
            return
        if target is None or target.bound_rec is not None:
            call.done.fire(
                RmiResult(
                    RmiStatus.ERROR_IN_USE,
                    f"core {call.target_core} is not free for rebinding",
                )
            )
            return
        # scrub this core before it can carry anything else (the
        # policy's ownership-change hook), then hand the binding over
        self.engine.policy.on_reassignment(self.core)
        self.bound_rec = None
        self.guest_domain = None
        rec.bound_core = target.core.index
        target.bound_rec = rec
        target.guest_domain = self.rmm.realms[call.realm_id].domain
        self.tracer.count("rec_rebind")
        self.tracer.tenure_cut(
            self.sim.now,
            self.core.index,
            self.rmm.realms[call.realm_id].domain.name,
        )
        call.done.fire(RmiResult(RmiStatus.SUCCESS, target.core.index))

    def _handle_unbind(self, call: UnbindCall):
        """Detach our REC without a destination core (autoscaler shrink).

        Validation mirrors :meth:`_handle_rebind`; on success this core
        is scrubbed and left unbound, and the REC is free to take a new
        permanent binding at its next first dispatch (grow).
        """
        yield from self.core.execute(
            MONITOR_DOMAIN, 2_000, interruptible=False
        )
        try:
            rec = self.rmm.find_rec(call.realm_id, call.rec_index)
        except Exception as exc:  # noqa: BLE001 - host input error
            call.done.fire(RmiResult(RmiStatus.ERROR_INPUT, str(exc)))
            return
        if rec.bound_core is None and self.bound_rec is None:
            # the vCPU was parked before its first dispatch: there is no
            # binding to drop, but the core is scrubbed all the same
            self.engine.policy.on_reassignment(self.core)
            self.tracer.count("rec_unbind_count")
            self.tracer.tenure_cut(
                self.sim.now,
                self.core.index,
                self.rmm.realms[call.realm_id].domain.name,
            )
            call.done.fire(RmiResult(RmiStatus.SUCCESS, self.core.index))
            return
        if rec is not self.bound_rec:
            call.done.fire(
                RmiResult(
                    RmiStatus.ERROR_CORE_BINDING,
                    f"{rec.name} is not bound to core {self.core.index}",
                )
            )
            return
        if rec.state is not RecState.READY:
            call.done.fire(
                RmiResult(RmiStatus.ERROR_REC, f"{rec.name} is running")
            )
            return
        self.engine.policy.on_reassignment(self.core)
        self.bound_rec = None
        self.guest_domain = None
        rec.bound_core = None
        self.tracer.count("rec_unbind_count")
        # the tenure cut lets the auditor end this realm's occupancy
        # window here: a later re-dedication of the same core (grow
        # after shrink) reads as a fresh window, not one long shared one
        self.tracer.tenure_cut(
            self.sim.now,
            self.core.index,
            self.rmm.realms[call.realm_id].domain.name,
        )
        call.done.fire(RmiResult(RmiStatus.SUCCESS, self.core.index))

    def _handle_release(self, call: ReleaseCall) -> None:
        if self.bound_rec is not None and (
            self.bound_rec.state is not RecState.DESTROYED
        ):
            call.done.fire(
                RmiResult(RmiStatus.ERROR_IN_USE, "REC still bound")
            )
            return
        # scrub every core-private microarchitectural structure before
        # the core can carry another domain's code (caches incl. L2,
        # TLB, branch predictor, store buffer) -- the hardware-state
        # analogue of scrubbing granules on undelegation.  What "scrub"
        # means is the isolation policy's call (repro.hw.policy).
        self.engine.policy.on_reassignment(self.core)
        self.released = True
        self.engine.dedicated.pop(self.core.index, None)
        call.done.fire(RmiResult(RmiStatus.SUCCESS))

    # ------------------------------------------------------------------
    # REC entry / exit
    # ------------------------------------------------------------------

    def _handle_run(self, call: RunCall):
        error = self._validate_run(call)
        if error is not None:
            yield from self.core.execute(
                MONITOR_DOMAIN, self.costs.rpc_write_ns, interruptible=False
            )
            call.port.complete(error)
            return
        rec = self.rmm.find_rec(call.realm_id, call.rec_index)
        realm = self.rmm.realms[call.realm_id]
        if rec.bound_core is None:
            # first dispatch: the binding becomes permanent (S4.2)
            rec.bound_core = self.core.index
            self.bound_rec = rec
            self.guest_domain = realm.domain
            if rec.gen is None:
                # dedicated cores can coalesce compute spans; give the
                # runtime the machine-level gate to consult per span
                rec.runtime.coalesce_allowed = self.core.machine.coalesce_allowed
                rec.gen = rec.runtime.run()
        rec.state = RecState.RUNNING
        rec.enter_count += 1
        self.runs_handled += 1

        yield from self.core.execute(
            MONITOR_DOMAIN,
            self.costs.rec_enter_ns + self.costs.rmm_lr_sync_ns,
            interruptible=False,
        )
        self._install_host_interrupts(rec, call.page.entry.interrupt_list)

        rec_exit = yield from self._guest_loop(rec, call.page)

        rec.state = RecState.READY
        rec.exit_count += 1
        rec_exit.exit_time = self.sim.now
        rec_exit.interrupt_list = rec.vgic.filtered_view()
        call.page.exit = rec_exit
        self.tracer.count(f"exit:{rec_exit.reason.value}")
        self.tracer.count("exits_total")
        if self.tracer.enabled:
            self.tracer.event(
                self.sim.now,
                "exit",
                core=self.core.index,
                domain=rec.name,
                detail=rec_exit.reason.value,
            )
        yield from self.core.execute(
            MONITOR_DOMAIN,
            self.costs.rec_exit_ns
            + self.costs.rmm_lr_sync_ns
            + self.costs.rpc_write_ns,
            interruptible=False,
        )
        call.port.complete(call.page)

    def _validate_run(self, call: RunCall) -> Optional[RmiResult]:
        try:
            rec = self.rmm.find_rec(call.realm_id, call.rec_index)
            realm = self.rmm.realms[call.realm_id]
        except Exception as exc:  # noqa: BLE001 - host error, not RMM crash
            return RmiResult(RmiStatus.ERROR_INPUT, str(exc))
        if realm.state is not RealmState.ACTIVE:
            return RmiResult(RmiStatus.ERROR_REALM, "realm not active")
        if rec.state is not RecState.READY:
            return RmiResult(RmiStatus.ERROR_REC, f"{rec.name} not ready")
        if rec.runtime is None:
            return RmiResult(RmiStatus.ERROR_REC, "REC has no loaded image")
        if rec.bound_core is not None and rec.bound_core != self.core.index:
            return RmiResult(
                RmiStatus.ERROR_CORE_BINDING,
                f"{rec.name} is bound to core {rec.bound_core}",
            )
        if self.bound_rec is not None and self.bound_rec is not rec:
            return RmiResult(
                RmiStatus.ERROR_CORE_BINDING,
                f"core {self.core.index} is dedicated to "
                f"{self.bound_rec.name}",
            )
        return None

    def _install_host_interrupts(self, rec: Rec, injections) -> None:
        for intid, payload in injections:
            if rec.vgic.inject(intid, from_host=True):
                rec.runtime.inject_virq(intid, payload)

    # ------------------------------------------------------------------
    # driving the guest
    # ------------------------------------------------------------------

    def _guest_loop(self, rec: Rec, page: RecRunPage):
        """Run the guest until something requires the host.  Returns the
        :class:`RecExit` to report."""
        gen = rec.gen
        to_send = rec.pending_send
        rec.pending_send = None
        if rec.last_exit_mmio_read:
            to_send = page.entry.mmio_data
            rec.last_exit_mmio_read = False
        costs = self.costs
        core = self.core

        while True:
            try:
                action = gen.send(to_send)
            except StopIteration:
                return RecExit(ExitReason.WORKLOAD_DONE)
            to_send = None

            if isinstance(action, Compute):
                result = yield from core.execute(
                    self.guest_domain, action.work_ns
                )
                if result.status == ExecStatus.INTERRUPTED:
                    yield from core.execute(
                        MONITOR_DOMAIN,
                        costs.rmm_intercept_ns,
                        interruptible=False,
                    )
                    rec_exit = self._take_phys_irq(rec)
                    if rec_exit is not None:
                        rec.pending_send = result.remaining_ns
                        return rec_exit
                    to_send = result.remaining_ns
                else:
                    to_send = 0

            elif isinstance(action, ComputeSpan):
                # refusal (None) costs no simulated time: the runtime
                # falls back to its per-chunk expansion.  Conditions are
                # rechecked here because they can change between the
                # runtime's check and ours (zero-event hop or not).
                if (
                    not core.machine.coalesce_allowed()
                    or action.n_chunks < 2
                    or core.pollution.pending_penalty(self.guest_domain)
                    > action.chunk_ns
                ):
                    continue
                result = yield from core.execute_span(
                    self.guest_domain,
                    action.chunk_ns,
                    action.n_chunks,
                    action.on_chunk,
                )
                if result.status == ExecStatus.INTERRUPTED:
                    yield from core.execute(
                        MONITOR_DOMAIN,
                        costs.rmm_intercept_ns,
                        interruptible=False,
                    )
                    rec_exit = self._take_phys_irq(rec)
                    if rec_exit is not None:
                        rec.pending_send = (
                            result.chunks_done, result.remaining_ns
                        )
                        return rec_exit
                    to_send = (result.chunks_done, result.remaining_ns)
                else:
                    to_send = (result.chunks_done, 0)

            elif isinstance(action, SetTimer):
                yield from core.execute(
                    MONITOR_DOMAIN, costs.rmm_intercept_ns, interruptible=False
                )
                if self.rmm.delegation_enabled:
                    yield from core.execute(
                        MONITOR_DOMAIN,
                        costs.rmm_vtimer_emul_ns,
                        interruptible=False,
                    )
                    core.timer.program_after(action.delta_ns)
                else:
                    return RecExit(
                        ExitReason.TIMER, timer_delta_ns=action.delta_ns
                    )

            elif isinstance(action, SendIpi):
                payload = self.engine.make_vipi_payload(self.sim.now)
                yield from core.execute(
                    MONITOR_DOMAIN, costs.rmm_intercept_ns, interruptible=False
                )
                if self.rmm.delegation_enabled:
                    yield from core.execute(
                        MONITOR_DOMAIN,
                        costs.rmm_vipi_emul_ns,
                        interruptible=False,
                    )
                    self.engine.deliver_vipi(
                        rec.realm_id,
                        action.target_vcpu,
                        payload,
                        from_core=self.core.index,
                    )
                else:
                    return RecExit(
                        ExitReason.IPI_REQUEST,
                        ipi_target=action.target_vcpu,
                        ipi_payload=payload,
                    )

            elif isinstance(action, MmioRead):
                rec.last_exit_mmio_read = True
                return RecExit(
                    ExitReason.MMIO_READ, device=action.device,
                )

            elif isinstance(action, MmioWrite):
                return RecExit(
                    ExitReason.MMIO_WRITE,
                    device=action.device,
                    is_write=True,
                    write_value=action.value,
                    request=action.request,
                )

            elif isinstance(action, DeviceDoorbell):
                # passthrough: straight to the device, no exit (S5.3)
                device = rec.runtime.vm.device(action.device)
                device.guest_doorbell(rec.runtime, action.request)

            elif isinstance(action, Wfi):
                rec_exit = yield from self._wfi(rec)
                if rec_exit is not None:
                    return rec_exit

            elif isinstance(action, PowerOff):
                return RecExit(ExitReason.PSCI_OFF)

            else:
                raise SimulationError(f"guest yielded {action!r}")

    def _take_phys_irq(self, rec: Rec) -> Optional[RecExit]:
        """Handle one pending physical interrupt on this core.

        Returns a :class:`RecExit` when the host must get involved,
        None when the interrupt was absorbed locally (delegation).
        """
        intid = self.core.take_interrupt()
        if intid is None:
            return None
        if intid == VTIMER_PPI:
            # delegated virtual timer: inject locally, no exit (S4.4)
            rec.vgic.inject(VTIMER_VIRQ, from_host=False)
            rec.runtime.inject_virq(VTIMER_VIRQ)
            rec.vgic.deliver(VTIMER_VIRQ)
            self.tracer.count("rmm_local_timer_inject")
            return None
        if intid == RMM_VIPI_SGI:
            # a peer dedicated core queued a virq for our guest already
            self.tracer.count("rmm_local_vipi_notice")
            return None
        if intid == HOST_KICK_SGI:
            return RecExit(ExitReason.HOST_KICK)
        if intid < 16 and intid != HOST_KICK_SGI and intid != RMM_VIPI_SGI:
            # stale host IPI (e.g. a reschedule IPI raised just before
            # the core left normal world): the GIC's world partitioning
            # would not deliver these into realm world; drop it
            self.tracer.count("rmm_stale_host_sgi")
            return None
        # any other physical interrupt belongs to the host
        return RecExit(ExitReason.IRQ, gprs=(intid,))

    def _wfi(self, rec: Rec):
        """Guest idles: wait locally for a virtual interrupt (no exit on
        dedicated cores -- there is nothing else to run here)."""
        core = self.core
        while not rec.runtime.has_pending_virq():
            if core.irq.has_pending():
                rec_exit = self._take_phys_irq(rec)
                if rec_exit is not None:
                    rec.pending_send = None
                    return rec_exit
                continue
            event = core.irq.doorbell.wait()
            yield event
        return None


class CoreGapEngine:
    """Monitor-side management of all dedicated cores."""

    def __init__(self, rmm: Rmm, policy: Optional[IsolationPolicy] = None):
        self.rmm = rmm
        self.machine = rmm.machine
        self.costs = rmm.costs
        self.tracer = self.machine.tracer
        #: isolation policy governing ownership-change scrubs; the
        #: monitor's own discipline is core-gapping unless the system
        #: threads a different strategy through (repro.hw.policy)
        self.policy = policy if policy is not None else resolve_policy("gapped")
        self.dedicated: Dict[int, DedicatedCore] = {}

    def dedicate(self, core_index: int) -> DedicatedCore:
        """Take ownership of a (host-offlined) core for the monitor."""
        if core_index in self.dedicated:
            raise SimulationError(f"core {core_index} already dedicated")
        core = self.machine.core(core_index)
        if core.online:
            raise SimulationError(
                f"core {core_index} still online to the host"
            )
        core.set_world(World.REALM)
        core.irq.reset()
        dedicated = DedicatedCore(self, core)
        self.dedicated[core_index] = dedicated
        self.machine.sim.spawn(dedicated.loop(), name=f"rmm-core{core_index}")
        return dedicated

    def lead_core(self) -> DedicatedCore:
        if not self.dedicated:
            raise SimulationError("no dedicated cores")
        return self.dedicated[min(self.dedicated)]

    # -- virtual IPI delegation (S4.4) ------------------------------------

    def make_vipi_payload(self, sent_at: int) -> dict:
        tracer = self.tracer

        def acked(payload: dict) -> None:
            tracer.sample(
                "vipi_latency_ns", payload["acked_at_fn"]() - payload["sent_at"]
            )

        return {
            "sent_at": sent_at,
            "acked_at_fn": lambda: self.machine.sim.now,
            "acked": acked,
        }

    def deliver_vipi(
        self,
        realm_id: int,
        target_vcpu: int,
        payload,
        from_core: Optional[int] = None,
    ) -> None:
        """Inject a guest IPI into a sibling REC without host involvement.

        ``from_core`` is trace metadata only (the sending dedicated
        core, when known); delivery is unaffected.
        """
        realm = self.rmm.realms[realm_id]
        target = realm.rec(target_vcpu)
        target.vgic.inject(VIPI_VIRQ, from_host=False)
        target.runtime.inject_virq(VIPI_VIRQ, payload)
        target.vgic.deliver(VIPI_VIRQ)
        if target.bound_core is not None:
            self.machine.gic.send_sgi(
                target.bound_core, RMM_VIPI_SGI, from_core=from_core
            )
