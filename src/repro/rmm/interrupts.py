"""Virtual interrupt management with RMM-side delegation (S4.4, fig. 5).

On Arm CCA, virtual interrupts live in list registers (``ich_lr<n>_el2``)
that the host manages: the run call takes an interrupt list and returns
an updated one.  The paper's prototype delegates the *virtual timer* and
*virtual IPIs* to the RMM: the RMM injects those interrupts directly and
exposes only a **filtered** list to KVM, hiding delegated interrupts
while managing the true list itself.  KVM needs no changes -- it sees a
consistent (sub)set.

This removes the two dominant exit causes for compute-bound workloads
(Table 4: 33954 -> 390 interrupt-related exits on CoreMark-PRO) and cuts
virtual IPI latency ~20x (Table 3), and also hands the guest a source of
time the host cannot manipulate.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..guest.vcpu import VIPI_VIRQ, VTIMER_VIRQ
from ..hw.gic import ListRegister, LrState, N_LIST_REGISTERS

__all__ = ["DELEGATED_DEFAULT", "VirtualGic"]

#: interrupts the core-gapped RMM emulates itself (S4.4)
DELEGATED_DEFAULT = frozenset({VTIMER_VIRQ, VIPI_VIRQ})


class VirtualGic:
    """One REC's virtual interrupt state: the true list + filtering."""

    def __init__(self, delegated: Optional[Set[int]] = None):
        self.delegated: Set[int] = set(delegated or ())
        self.lrs: List[ListRegister] = [
            ListRegister() for _ in range(N_LIST_REGISTERS)
        ]
        self.injected_by_rmm = 0
        self.injected_by_host = 0
        self.overflow_drops = 0

    # -- injection (fig. 5 steps 2 and 4) ---------------------------------

    def _free_slot(self) -> Optional[ListRegister]:
        for lr in self.lrs:
            if lr.free:
                return lr
        return None

    def _find(self, vintid: int) -> Optional[ListRegister]:
        for lr in self.lrs:
            if not lr.free and lr.vintid == vintid:
                return lr
        return None

    def inject(self, vintid: int, from_host: bool) -> bool:
        """Set ``vintid`` pending; returns False when no slot is free."""
        if from_host and vintid in self.delegated:
            # the filtered view never shows delegated intids, so a host
            # injection of one indicates a confused (or malicious) host;
            # it is ignored rather than trusted
            return False
        existing = self._find(vintid)
        if existing is not None:
            if existing.state == LrState.ACTIVE:
                existing.state = LrState.PENDING_ACTIVE
            return True  # already pending: interrupts coalesce
        slot = self._free_slot()
        if slot is None:
            self.overflow_drops += 1
            return False
        slot.vintid = vintid
        slot.state = LrState.PENDING
        if from_host:
            self.injected_by_host += 1
        else:
            self.injected_by_rmm += 1
        return True

    def deliver(self, vintid: int) -> None:
        """The guest took the interrupt: pending -> active -> retired.

        We retire immediately (EOI folded in) since the guest handler
        cost is modelled in the vCPU runtime.
        """
        lr = self._find(vintid)
        if lr is None:
            return
        if lr.state == LrState.PENDING_ACTIVE:
            lr.state = LrState.PENDING
        else:
            lr.vintid = None
            lr.state = LrState.INVALID

    def pending_intids(self) -> List[int]:
        return [
            lr.vintid
            for lr in self.lrs
            if lr.state in (LrState.PENDING, LrState.PENDING_ACTIVE)
        ]

    # -- the host's filtered window (fig. 5 steps 1 and 5) ------------------

    def filtered_view(self) -> List[ListRegister]:
        """What KVM sees: every slot whose intid is not delegated."""
        return [
            lr.copy()
            for lr in self.lrs
            if lr.free or lr.vintid not in self.delegated
        ]

    def sync_from_host(self, host_list: List[ListRegister]) -> int:
        """Merge the host-provided list into the true list (fig. 5 (2)).

        Only non-delegated interrupts are accepted; the RMM validates
        rather than trusts.  Returns how many were installed.
        """
        installed = 0
        for lr in host_list:
            if lr.free or lr.vintid is None:
                continue
            if lr.state not in (LrState.PENDING, LrState.PENDING_ACTIVE):
                continue
            if self.inject(lr.vintid, from_host=True):
                installed += 1
        return installed

    def invariant_filtered_is_subset(self) -> bool:
        """The host view is always a subset of the true list, and never
        contains delegated intids (tested property)."""
        true_ids = {lr.vintid for lr in self.lrs if not lr.free}
        for lr in self.filtered_view():
            if lr.free:
                continue
            if lr.vintid in self.delegated:
                return False
            if lr.vintid not in true_ids:
                return False
        return True
