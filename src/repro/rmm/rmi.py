"""RMI: the realm management interface between host and RMM.

This mirrors the shape of Arm's RMM specification interface: commands
for granule delegation, realm/REC lifecycle, RTT manipulation and REC
entry.  The core-gapped prototype keeps this API *unchanged* (the paper
changes only the transport: same-core SMC vs. cross-core RPC), so both
the baseline and core-gapped monitors implement exactly this interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..hw.gic import ListRegister

__all__ = [
    "RmiCommand",
    "RmiStatus",
    "RmiResult",
    "ExitReason",
    "RecEntry",
    "RecExit",
    "RecRunPage",
]


class RmiCommand(enum.Enum):
    """RMI function identifiers (names follow the RMM spec)."""

    VERSION = 0x150
    GRANULE_DELEGATE = 0x151
    GRANULE_UNDELEGATE = 0x152
    REALM_CREATE = 0x158
    REALM_DESTROY = 0x159
    REALM_ACTIVATE = 0x157
    REC_CREATE = 0x15A
    REC_DESTROY = 0x15B
    REC_ENTER = 0x15C
    RTT_CREATE = 0x15D
    RTT_DESTROY = 0x15E
    DATA_CREATE = 0x153
    DATA_DESTROY = 0x155
    RTT_MAP_UNPROTECTED = 0x15F
    RTT_UNMAP_UNPROTECTED = 0x160
    #: core-gapping additions are *not* new commands -- binding happens
    #: implicitly at first REC_ENTER -- but the planner uses this to
    #: hand a core to the monitor.
    CORE_DEDICATE = 0x1C0
    CORE_RECLAIM = 0x1C1


class RmiStatus(enum.Enum):
    SUCCESS = 0
    ERROR_INPUT = 1  # malformed parameters
    ERROR_REALM = 2  # realm in wrong state
    ERROR_REC = 3  # REC in wrong state
    ERROR_RTT = 4  # translation-table fault
    ERROR_IN_USE = 5  # granule/core busy
    ERROR_CORE_BINDING = 6  # core-gapping: wrong-core dispatch refused


@dataclass
class RmiResult:
    """Status plus optional payload returned from an RMI call."""

    status: RmiStatus
    value: object = None

    @property
    def ok(self) -> bool:
        return self.status is RmiStatus.SUCCESS


class ExitReason(enum.Enum):
    """Why a REC exited back to the host."""

    WFI = "wfi"  # guest idled
    IRQ = "irq"  # physical interrupt needs host handling
    TIMER = "timer"  # guest timer programming (undelegated only)
    IPI_REQUEST = "ipi"  # guest asked for a vCPU IPI (undelegated only)
    MMIO_READ = "mmio_read"  # emulated device access
    MMIO_WRITE = "mmio_write"
    HOST_KICK = "host_kick"  # host requested an exit (interrupt injection)
    PSCI_OFF = "psci_off"  # guest shut down
    WORKLOAD_DONE = "workload_done"  # simulation convenience: guest finished


#: exit reasons that interrupt delegation (S4.4) eliminates
DELEGATABLE_EXITS = {ExitReason.TIMER, ExitReason.IPI_REQUEST}


@dataclass
class RecEntry:
    """Host -> RMM portion of the run page for one REC_ENTER."""

    #: virtual interrupts the host wants installed (fig. 5 step 1):
    #: (intid, payload) pairs; with delegation this is the host's
    #: *filtered* window, and delegated intids in it are rejected.
    interrupt_list: List[Tuple[int, object]] = field(default_factory=list)
    #: for MMIO reads, the emulated data being returned to the guest
    mmio_data: Optional[int] = None


@dataclass
class RecExit:
    """RMM -> host portion of the run page after a REC exit."""

    reason: ExitReason = ExitReason.WFI
    #: selected guest registers the host needs for emulation
    gprs: Tuple[int, ...] = ()
    #: faulting device and request for MMIO exits
    device: Optional[str] = None
    request: object = None
    is_write: bool = False
    write_value: Optional[int] = None
    #: timer programming for undelegated TIMER exits
    timer_delta_ns: Optional[int] = None
    #: target vCPU + payload for undelegated IPI_REQUEST exits
    ipi_target: Optional[int] = None
    ipi_payload: object = None
    #: updated virtual interrupt list (fig. 5 step 5), filtered
    interrupt_list: List[ListRegister] = field(default_factory=list)
    #: simulated time of the exit event (instrumentation)
    exit_time: int = 0


@dataclass
class RecRunPage:
    """The shared (non-confidential) page exchanged on each run call."""

    entry: RecEntry = field(default_factory=RecEntry)
    exit: RecExit = field(default_factory=RecExit)
