"""The RMM: RMI command handling and realm bookkeeping.

This is the security-monitor state machine shared by both builds:

* the **baseline** build runs RMI calls on the caller's core via SMC
  (world switches + mitigation flushes on each trust-boundary crossing);
* the **core-gapped** build (:mod:`repro.rmm.core_gap`) runs the same
  handlers on dedicated cores, reached by cross-core RPC.

The handlers themselves are transport-agnostic pure state transitions --
the paper's point that the RMI *API* is unchanged (2.7% LoC increase in
the RMM, no guest changes) is mirrored here.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..hw.machine import Machine
from .attestation import (
    AttestationToken,
    CORE_GAPPED_RMM,
    PlatformRootOfTrust,
    RmmImage,
)
from .granule import GranuleError, GranuleState, GranuleTracker
from .interrupts import DELEGATED_DEFAULT, VirtualGic
from .realm import Realm, RealmError, RealmState, Rec, RecState
from .rmi import RmiCommand, RmiResult, RmiStatus
from .rtt import RttError

__all__ = ["Rmm"]


class Rmm:
    """Realm management monitor state (one instance per machine)."""

    def __init__(
        self,
        machine: Machine,
        costs: CostModel = DEFAULT_COSTS,
        image: RmmImage = CORE_GAPPED_RMM,
        delegated_intids: Optional[Set[int]] = None,
    ):
        self.machine = machine
        self.costs = costs
        self.image = image
        #: interrupt delegation set (empty = no delegation, the ablation)
        self.delegated_intids: Set[int] = set(
            DELEGATED_DEFAULT if delegated_intids is None else delegated_intids
        )
        self.granules = GranuleTracker(machine.memory)
        self.realms: Dict[int, Realm] = {}
        self.root_of_trust = PlatformRootOfTrust()
        self._next_realm_id = 1
        self._next_vmid = 1
        self.rmi_counts: Dict[RmiCommand, int] = {}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle_rmi(self, cmd: RmiCommand, args: Tuple = ()) -> RmiResult:
        """Run one RMI command; errors come back as statuses, never
        exceptions (a hostile host must not crash the monitor)."""
        self.rmi_counts[cmd] = self.rmi_counts.get(cmd, 0) + 1
        handler = getattr(self, f"_rmi_{cmd.name.lower()}", None)
        if handler is None:
            return RmiResult(RmiStatus.ERROR_INPUT, f"unknown command {cmd}")
        try:
            return handler(*args)
        except GranuleError as exc:
            return RmiResult(RmiStatus.ERROR_IN_USE, str(exc))
        except RttError as exc:
            return RmiResult(RmiStatus.ERROR_RTT, str(exc))
        except RealmError as exc:
            return RmiResult(RmiStatus.ERROR_REALM, str(exc))
        except (TypeError, KeyError, ValueError) as exc:
            return RmiResult(RmiStatus.ERROR_INPUT, str(exc))

    def handler_cost_ns(self, cmd: RmiCommand) -> int:
        """CPU cost of executing one RMI handler (beyond transport)."""
        if cmd is RmiCommand.VERSION:
            return self.costs.rmm_null_handler_ns
        if cmd in (RmiCommand.GRANULE_DELEGATE, RmiCommand.GRANULE_UNDELEGATE):
            return 600  # GPT update + TLB maintenance
        if cmd in (RmiCommand.DATA_CREATE, RmiCommand.RTT_CREATE):
            return 900  # page copy/measure or table init
        return 400

    # ------------------------------------------------------------------
    # RMI handlers
    # ------------------------------------------------------------------

    def _rmi_version(self) -> RmiResult:
        return RmiResult(RmiStatus.SUCCESS, (1, 0))

    def _rmi_granule_delegate(self, addr: int) -> RmiResult:
        self.granules.delegate(addr)
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_granule_undelegate(self, addr: int) -> RmiResult:
        self.granules.undelegate(addr)
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_realm_create(self, rd_addr: int) -> RmiResult:
        realm_id = self._next_realm_id
        self.granules.consume(rd_addr, GranuleState.RD, realm_id)
        realm = Realm(realm_id, rd_addr, self.granules, vmid=self._next_vmid)
        self._next_realm_id += 1
        self._next_vmid += 1
        self.realms[realm_id] = realm
        return RmiResult(RmiStatus.SUCCESS, realm_id)

    def _realm(self, realm_id: int) -> Realm:
        if realm_id not in self.realms:
            raise RealmError(f"no realm {realm_id}")
        return self.realms[realm_id]

    def _rmi_realm_activate(self, realm_id: int) -> RmiResult:
        self._realm(realm_id).activate()
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_realm_destroy(self, realm_id: int) -> RmiResult:
        realm = self._realm(realm_id)
        realm.destroy()
        del self.realms[realm_id]
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_rec_create(self, realm_id: int, granule_addr: int) -> RmiResult:
        realm = self._realm(realm_id)
        rec = realm.create_rec(granule_addr)
        rec.vgic = VirtualGic(self.delegated_intids)
        rec.runtime = None  # attached by the system builder (guest image)
        rec.pending_send = None
        rec.gen = None
        return RmiResult(RmiStatus.SUCCESS, rec.index)

    def _rmi_rec_destroy(self, realm_id: int, rec_index: int) -> RmiResult:
        realm = self._realm(realm_id)
        rec = realm.rec(rec_index)
        if rec.state is RecState.RUNNING:
            return RmiResult(RmiStatus.ERROR_REC, "REC is running")
        realm.destroy_rec(rec_index)
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_rtt_create(
        self, realm_id: int, ipa: int, level: int, granule_addr: int
    ) -> RmiResult:
        self._realm(realm_id).rtt.create_table(ipa, level, granule_addr)
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_rtt_destroy(self, realm_id: int, ipa: int, level: int) -> RmiResult:
        self._realm(realm_id).rtt.destroy_table(ipa, level)
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_data_create(
        self, realm_id: int, ipa: int, data_granule: int, content: int = 0
    ) -> RmiResult:
        realm = self._realm(realm_id)
        realm.require_state(RealmState.NEW)
        self.granules.consume(data_granule, GranuleState.DATA, realm_id)
        try:
            realm.rtt.map_page(ipa, data_granule)
        except RttError:
            self.granules.release(data_granule)
            raise
        realm.extend_measurement((ipa, content).__hash__())
        return RmiResult(RmiStatus.SUCCESS)

    def _rmi_data_destroy(self, realm_id: int, ipa: int) -> RmiResult:
        realm = self._realm(realm_id)
        pa = realm.rtt.unmap_page(ipa)
        self.granules.release(pa)
        return RmiResult(RmiStatus.SUCCESS, pa)

    # ------------------------------------------------------------------
    # attestation (RSI-side service)
    # ------------------------------------------------------------------

    def attestation_token(
        self, realm_id: int, challenge: int
    ) -> AttestationToken:
        """Issue a token for a realm (guest-initiated via RSI)."""
        realm = self._realm(realm_id)
        return self.root_of_trust.sign_token(
            self.image, realm.measurement, challenge
        )

    # ------------------------------------------------------------------
    # helpers for execution engines
    # ------------------------------------------------------------------

    def find_rec(self, realm_id: int, rec_index: int) -> Rec:
        return self._realm(realm_id).rec(rec_index)

    @property
    def delegation_enabled(self) -> bool:
        return bool(self.delegated_intids)
