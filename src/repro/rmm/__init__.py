"""The security monitor (RMM): granules, RTTs, realms, core gapping."""

from .attestation import (
    BASELINE_RMM,
    CORE_GAPPED_RMM,
    AttestationToken,
    PlatformRootOfTrust,
    RmmImage,
    verify_token,
)
from .core_gap import (
    CoreGapEngine,
    DedicatedCore,
    HOST_KICK_SGI,
    ReleaseCall,
    RmiCall,
    RMM_VIPI_SGI,
    RunCall,
)
from .granule import GRANULE_SIZE, GranuleError, GranuleState, GranuleTracker
from .interrupts import DELEGATED_DEFAULT, VirtualGic
from .monitor import Rmm
from .realm import Realm, RealmError, RealmState, Rec, RecState
from .rmi import (
    ExitReason,
    RecEntry,
    RecExit,
    RecRunPage,
    RmiCommand,
    RmiResult,
    RmiStatus,
)
from .rtt import RealmTranslationTable, RttError

__all__ = [
    "AttestationToken",
    "BASELINE_RMM",
    "CORE_GAPPED_RMM",
    "CoreGapEngine",
    "DELEGATED_DEFAULT",
    "DedicatedCore",
    "ExitReason",
    "GRANULE_SIZE",
    "GranuleError",
    "GranuleState",
    "GranuleTracker",
    "HOST_KICK_SGI",
    "PlatformRootOfTrust",
    "Realm",
    "RealmError",
    "RealmState",
    "RealmTranslationTable",
    "Rec",
    "RecEntry",
    "RecExit",
    "RecRunPage",
    "RecState",
    "ReleaseCall",
    "RmiCall",
    "RmiCommand",
    "RmiResult",
    "RmiStatus",
    "Rmm",
    "RmmImage",
    "RMM_VIPI_SGI",
    "RttError",
    "RunCall",
    "VirtualGic",
    "verify_token",
]
