"""System builder: machine + host + monitor, booted per configuration.

The experiment harnesses (benchmarks/) and examples build a
:class:`System`, launch VMs on it, attach devices, run the clock, and
read results.  This is also the integration surface exercised by the
end-to-end tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..hw.gic import SPI_BASE
from ..hw.machine import Machine
from ..hw.topology import SocTopology
from ..isa.worlds import SecurityDomain, World
from ..rmm.attestation import CORE_GAPPED_RMM
from ..rmm.core_gap import CoreGapEngine
from ..rmm.monitor import Rmm
from ..obs import build_registry, profiler_from_env
from ..sim.engine import Event, SimulationError, Simulator
from ..sim.rng import RngFactory
from ..sim.trace import Tracer
from ..host.kernel import HostKernel
from ..host.kvm import KvmVm, VmMode
from ..host.planner import CorePlanner
from ..host.sriov import SriovNic
from ..host.threads import HostThread, SchedClass
from ..host.virtio import VirtioBackend
from ..host.wakeup import ExitNotifier
from .config import SystemConfig

__all__ = ["System"]


class System:
    """One booted simulated server."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        costs: CostModel = DEFAULT_COSTS,
    ):
        if config is None:
            config = SystemConfig()
        self.config = config
        self.costs = costs
        topology = SocTopology(
            name="exp", n_cores=config.n_cores, memory_gib=64
        )
        self.machine = Machine(
            topology,
            sim=Simulator(
                tie_break=config.tie_break, scheduler=config.scheduler
            ),
            tracer=Tracer(enabled=config.trace_schedules),
            rng=RngFactory(config.seed),
        )
        self.machine.coalesce_compute = config.coalesce_compute
        self.sim = self.machine.sim
        self.tracer = self.machine.tracer
        self.kernel = HostKernel(self.machine, costs)
        delegated = None if config.delegation else set()
        self.rmm = Rmm(
            self.machine,
            costs,
            image=CORE_GAPPED_RMM,
            delegated_intids=delegated,
        )
        #: isolation policy resolved once and threaded through the
        #: world-switch paths (engine, KVM); see repro.hw.policy
        self.policy = config.resolved_policy()
        self.engine = CoreGapEngine(self.rmm, policy=self.policy)
        if config.is_gapped:
            self.host_cores: Set[int] = set(range(config.n_host_cores))
        else:
            self.host_cores = set(range(config.n_cores))
        self.notifier = ExitNotifier(
            self.kernel,
            target_core=min(self.host_cores),
            costs=costs,
            host_cores=self.host_cores,
        )
        self.planner = CorePlanner(
            self.kernel, self.engine, self.notifier, self.host_cores, costs
        )
        self.kernel.start()
        if config.housekeeping is not None:
            period, burst = config.housekeeping
            self.kernel.add_housekeeping(period, burst)
        self._next_spi = SPI_BASE + 1
        self._next_vm_serial = 1
        self.kvms: List[KvmVm] = []
        #: typed view over the tracer's counters/gauges/samples; every
        #: name the tree publishes is declared in repro.obs.catalog
        self.metrics = build_registry(self.tracer)
        self._profiler = profiler_from_env()
        if self._profiler is not None:
            self.sim.attach_profiler(self._profiler)

    # ------------------------------------------------------------------
    # VM launch
    # ------------------------------------------------------------------

    def launch(self, vm: GuestVm) -> KvmVm:
        """Launch a VM in the configured mode; returns its KVM state.

        For core-gapped mode this drives the planner thread to
        completion (hotplug, realm build over sync RPC, port setup)
        before starting the vCPU threads; time advances accordingly.
        """
        if self.config.is_gapped:
            kvm = self._launch_gapped(vm)
        else:
            kvm = self._launch_shared(vm)
        self.kvms.append(kvm)
        return kvm

    def _launch_shared(self, vm: GuestVm) -> KvmVm:
        mode = (
            VmMode.SHARED_CVM
            if self.config.mode == "shared-cvm"
            else VmMode.SHARED
        )
        vm.domain = SecurityDomain(f"vm:{vm.name}", World.NORMAL)
        kvm = KvmVm(
            self.kernel,
            vm,
            mode,
            host_cores=self.host_cores,
            costs=self.costs,
            policy=self.policy,
        )
        return kvm

    def _launch_gapped(self, vm: GuestVm) -> KvmVm:
        def body():
            kvm = yield from self.planner.launch_cvm(
                vm, busywait=self.config.busywait
            )
            return kvm

        thread = HostThread(
            name=f"planner:{vm.name}",
            body=body(),
            sched_class=SchedClass.FAIR,
            affinity=self.host_cores,
        )
        self.kernel.add_thread(thread)
        self.run_until_event(thread.done_event)
        if thread.result is None:
            raise SimulationError(f"planner failed to launch {vm.name}")
        return thread.result

    def start(self, kvm: KvmVm) -> None:
        """Start the vCPU threads of a launched VM."""
        kvm.start()

    def terminate(self, kvm: KvmVm) -> None:
        """Tear down a finished core-gapped CVM and reclaim its cores."""
        if not self.config.is_gapped:
            return

        def body():
            result = yield from self.planner.terminate_cvm(kvm)
            return result

        thread = HostThread(
            name=f"planner-stop:{kvm.vm.name}",
            body=body(),
            sched_class=SchedClass.FAIR,
            affinity=self.host_cores,
        )
        self.kernel.add_thread(thread)
        self.run_until_event(thread.done_event)

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------

    def _alloc_spi(self) -> int:
        spi = self._next_spi
        self._next_spi += 1
        return spi

    def _require_kvm(self, method: str, kvm) -> KvmVm:
        """The ``add_*`` methods take the launched :class:`KvmVm` only
        (it already holds ``kvm.vm``); anything else is a caller bug."""
        if not isinstance(kvm, KvmVm):
            raise TypeError(
                f"System.{method}: first argument must be a KvmVm, "
                f"got {kvm!r}"
            )
        return kvm

    def add_virtio_net(
        self, kvm: KvmVm, name: Optional[str] = None, *,
        echo_peer: bool = False,
    ) -> VirtioBackend:
        kvm = self._require_kvm("add_virtio_net", kvm)
        name = name or "virtio-net0"
        vm = kvm.vm
        device = VirtioBackend(
            name,
            "net",
            self.kernel,
            injector=kvm.inject_virq,
            intid=self._alloc_spi(),
            host_cores=self.host_cores,
            n_vcpus=vm.n_vcpus,
            vm=vm,
            costs=self.costs,
            echo_peer=echo_peer,
        )
        vm.attach_device(name, device)
        return device

    def add_virtio_blk(
        self, kvm: KvmVm, name: Optional[str] = None
    ) -> VirtioBackend:
        kvm = self._require_kvm("add_virtio_blk", kvm)
        name = name or "virtio-blk0"
        vm = kvm.vm
        device = VirtioBackend(
            name,
            "blk",
            self.kernel,
            injector=kvm.inject_virq,
            intid=self._alloc_spi(),
            host_cores=self.host_cores,
            n_vcpus=vm.n_vcpus,
            vm=vm,
            costs=self.costs,
        )
        vm.attach_device(name, device)
        return device

    def add_sriov_nic(
        self, kvm: KvmVm, name: Optional[str] = None, *,
        echo_peer: bool = False,
    ) -> SriovNic:
        kvm = self._require_kvm("add_sriov_nic", kvm)
        name = name or "sriov-net0"
        vm = kvm.vm
        device = SriovNic(
            name,
            self.machine,
            self.kernel,
            injector=kvm.inject_virq,
            intid=self._alloc_spi(),
            irq_core=min(self.host_cores),
            n_vcpus=vm.n_vcpus,
            vm=vm,
            costs=self.costs,
            echo_peer=echo_peer,
        )
        vm.attach_device(name, device)
        return device

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        self.sim.run(until=self.sim.now + duration_ns)

    def _drive(
        self,
        predicate: Callable[[], bool],
        limit_ns: Optional[int],
        what: str,
    ) -> None:
        """Run events until ``predicate()`` holds, a deadline passes, or
        the simulation drains dry.

        The single driver behind every ``run_until_*``; the deadline
        check is inclusive (``>=``) so ``limit_ns=0`` cannot run a
        single event past the deadline.
        """
        deadline = None if limit_ns is None else self.sim.now + limit_ns
        while not predicate():
            if self.sim.pending_events == 0:
                raise SimulationError(f"deadlock waiting for {what}")
            if deadline is not None and self.sim.now >= deadline:
                raise SimulationError(f"timeout waiting for {what}")
            self.sim.run_one()

    def run_until_event(self, event: Event, limit_ns: Optional[int] = None) -> None:
        self._drive(lambda: event.fired, limit_ns, "event")

    def run_until_vm_done(self, kvm: KvmVm, limit_ns: Optional[int] = None) -> int:
        self.run_until_event(kvm.done_event, limit_ns)
        return self.sim.now

    def run_until(self, predicate: Callable[[], bool], limit_ns: Optional[int] = None) -> None:
        self._drive(predicate, limit_ns, "predicate")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def exit_counts(self) -> Dict[str, int]:
        return {
            key: count
            for key, count in self.tracer.counters.items()
            if key.startswith("exit:") or key == "exits_total"
        }

    def capture_state(self, extra: Optional[Dict] = None) -> Dict:
        """Canonical snapshot capture of this system's live state
        (:func:`repro.snap.capture_system`)."""
        from ..snap import capture_system  # lazy: snap is optional here

        return capture_system(self, extra=extra)

    def state_digest(self, extra: Optional[Dict] = None) -> str:
        """sha256 over :meth:`capture_state` — two systems in the same
        state have the same digest, bit-for-bit."""
        from ..snap import capture_digest

        return capture_digest(self.capture_state(extra))

    def finish(self) -> None:
        self.machine.finish_tracing()
        self._harvest_gauges()

    def _harvest_gauges(self) -> None:
        """Publish end-of-run structural totals as declared gauges.

        Gauges live in ``Tracer.gauges`` and are never digested, so this
        harvest cannot move sanitizer or sweep digests.
        """
        metrics = self.metrics
        metrics.gauge("gic_sgi_sent_count").set(self.machine.gic.sgi_sent)
        metrics.gauge("gic_spi_raised_count").set(self.machine.gic.spi_raised)
        submits = completes = 0
        for kvm in self.kvms:
            for port in kvm.ports.values():
                submits += port.submit_count
                completes += port.complete_count
        metrics.gauge("rpc_submit_count").set(submits)
        metrics.gauge("rpc_complete_count").set(completes)
        metrics.gauge("rpc_sync_call_count").set(
            self.planner.sync_port.call_count
        )
        metrics.gauge("sim_end_ns").set(self.sim.now)
