"""Table 4: interrupt delegation effect on CoreMark-PRO exit counts.

A 16-core CoreMark-PRO run (15 vCPUs core-gapped + 1 host core), with
and without RMM interrupt delegation.  The paper reports 33954 -> 390
interrupt-related exits and 37712 -> 1324 total (a 28x reduction).

Besides the timer ticks the guest itself generates, a real VM sees a
light background of host-injected device interrupts (console, network
housekeeping) and makes occasional MMIO accesses; both are modelled so
the residual exit counts with delegation are non-zero, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.actions import Compute, MmioWrite
from ..guest.vm import GuestVm
from ..guest.workloads.coremark import CoremarkStats, DEFAULT_CHUNK_NS
from ..guest.vcpu import VTIMER_VIRQ
from ..host.virtio import IoRequest
from ..sim.clock import ms, sec, us
from .config import SystemConfig
from .system import System

__all__ = ["Table4Result", "run_table4", "INTERRUPT_EXITS"]

#: exit reasons classified as interrupt-related (timer programming,
#: IPI requests, interrupt-injection kicks, physical interrupts)
INTERRUPT_EXITS = ("timer", "ipi", "host_kick", "irq", "wfi")

#: rate of host-injected background interrupts (console etc.)
BACKGROUND_IRQ_PERIOD_NS = ms(12)
#: period of the guest's own console/MMIO heartbeat on vCPU 0
CONSOLE_PERIOD_NS = ms(5)


@dataclass
class Table4Result:
    interrupt_exits: Dict[bool, int]  # delegation -> count
    total_exits: Dict[bool, int]

    def reduction_factor(self) -> float:
        with_d = max(1, self.total_exits[True])
        return self.total_exits[False] / with_d


def _coremark_with_console(stats: CoremarkStats, device: str):
    """CoreMark plus a periodic console write on vCPU 0."""

    def factory(vm: GuestVm, index: int):
        if index == 0:
            return _console_vcpu(stats, index, device)
        return _plain_vcpu(stats, index)

    return factory


def _plain_vcpu(stats: CoremarkStats, index: int):
    while True:
        yield Compute(DEFAULT_CHUNK_NS, mem_fraction=0.35)
        stats.note_chunk(index)


def _console_vcpu(stats: CoremarkStats, index: int, device: str):
    chunks_per_console = max(1, CONSOLE_PERIOD_NS // DEFAULT_CHUNK_NS)
    count = 0
    while True:
        yield Compute(DEFAULT_CHUNK_NS, mem_fraction=0.35)
        stats.note_chunk(index)
        count += 1
        if count % chunks_per_console == 0:
            yield MmioWrite(
                0x3000, device, request=IoRequest("net_tx", 64)
            )


def _run_one(
    delegation: bool, duration_ns: int, costs: CostModel
) -> Dict[str, int]:
    config = SystemConfig(
        mode="gapped", n_cores=16, delegation=delegation
    )
    system = System(config, costs)
    stats = CoremarkStats()
    vm = GuestVm(
        "coremark", 15, _coremark_with_console(stats, "virtio-net0"),
        costs=costs,
    )
    kvm = system.launch(vm)
    system.add_virtio_net(kvm, "virtio-net0")
    system.start(kvm)

    # background host-injected interrupts, round-robin over vCPUs
    state = {"next": 0}

    def background() -> None:
        if kvm.finished_vcpus >= vm.n_vcpus:
            return
        target = state["next"] % vm.n_vcpus
        state["next"] += 1
        kvm.inject_virq(target, vm.device("virtio-net0").intid,
                        ("virtio-net0", "note"))
        system.sim.schedule(BACKGROUND_IRQ_PERIOD_NS, background)

    system.sim.schedule(BACKGROUND_IRQ_PERIOD_NS, background)

    system.run_for(duration_ns)
    return system.exit_counts()


def run_table4(
    duration_ns: int = int(sec(4.5)), costs: CostModel = DEFAULT_COSTS
) -> Table4Result:
    interrupt_exits: Dict[bool, int] = {}
    total_exits: Dict[bool, int] = {}
    for delegation in (False, True):
        counts = _run_one(delegation, duration_ns, costs)
        interrupt_exits[delegation] = sum(
            counts.get(f"exit:{reason}", 0) for reason in INTERRUPT_EXITS
        )
        total_exits[delegation] = counts.get("exits_total", 0)
    return Table4Result(
        interrupt_exits=interrupt_exits, total_exits=total_exits
    )
