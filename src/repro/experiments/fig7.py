"""Fig. 7: scaling to multiple VMs.

Instead of one big VM, an increasing count of 4-core VMs runs CoreMark
concurrently; the figure plots the *aggregate* score.  In the
core-gapped configuration all VMM threads for every VM are pinned to a
single host core -- the paper shows up to 16 VMMs on one host core
without hurting throughput, because delegation keeps exits rare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.clock import sec
from .config import SystemConfig
from .workbench import run_coremark

__all__ = ["Fig7Result", "run_fig7", "DEFAULT_VM_COUNTS"]

DEFAULT_VM_COUNTS = [1, 2, 4, 8, 12, 15]
VCPUS_PER_VM = 4


@dataclass
class Fig7Result:
    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def aggregate(self, series: str, n_vms: int) -> Optional[float]:
        for x, y in self.series.get(series, []):
            if x == n_vms:
                return y
        return None


def run_fig7(
    vm_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    costs: CostModel = DEFAULT_COSTS,
) -> Fig7Result:
    vm_counts = vm_counts or DEFAULT_VM_COUNTS
    result = Fig7Result()
    for label in ("shared", "gapped"):
        points: List[Tuple[int, float]] = []
        for n_vms in vm_counts:
            if label == "gapped":
                # all 4-vCPU CVMs + one shared host core
                n_cores = n_vms * VCPUS_PER_VM + 1
                config = SystemConfig(mode="gapped", n_cores=n_cores)
            else:
                # fair accounting: the same number of physical cores
                n_cores = n_vms * VCPUS_PER_VM + 1
                config = SystemConfig(mode="shared", n_cores=n_cores)
            run = run_coremark(
                config,
                duration_ns=duration_ns,
                costs=costs,
                vm_list=[VCPUS_PER_VM] * n_vms,
            )
            points.append((n_vms, run.score))
        result.series[label] = points
    return result
