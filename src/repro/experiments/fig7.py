"""Fig. 7: scaling to multiple VMs.

Instead of one big VM, an increasing count of 4-core VMs runs CoreMark
concurrently; the figure plots the *aggregate* score.  In the
core-gapped configuration all VMM threads for every VM are pinned to a
single host core -- the paper shows up to 16 VMMs on one host core
without hurting throughput, because delegation keeps exits rare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.clock import sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .workbench import run_coremark

__all__ = ["Fig7Result", "run_fig7", "fig7_cells", "DEFAULT_VM_COUNTS"]

DEFAULT_VM_COUNTS = [1, 2, 4, 8, 12, 15]
VCPUS_PER_VM = 4


@dataclass
class Fig7Result:
    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def aggregate(self, series: str, n_vms: int) -> Optional[float]:
        for x, y in self.series.get(series, []):
            if x == n_vms:
                return y
        return None


def _multivm_cell(
    label: str, n_vms: int, duration_ns: int, costs: CostModel
) -> float:
    """One fig-7 data point: aggregate CoreMark score for ``n_vms`` VMs.

    Fair accounting: both modes get the same physical-core budget — all
    4-vCPU CVMs plus one (gapped: shared-host) core.
    """
    n_cores = n_vms * VCPUS_PER_VM + 1
    config = SystemConfig(mode=label, n_cores=n_cores)
    run = run_coremark(
        config,
        duration_ns=duration_ns,
        costs=costs,
        vm_list=[VCPUS_PER_VM] * n_vms,
    )
    return run.score


def fig7_cells(
    vm_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    vm_counts = vm_counts or DEFAULT_VM_COUNTS
    return [
        cell(
            f"fig7/{label}/{n_vms}",
            _multivm_cell,
            label=label,
            n_vms=n_vms,
            duration_ns=duration_ns,
            costs=costs,
        )
        for label in ("shared", "gapped")
        for n_vms in vm_counts
    ]


def run_fig7(
    vm_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Fig7Result:
    cells = fig7_cells(vm_counts, duration_ns, costs)
    outputs = run_cells(cells, jobs=jobs)
    result = Fig7Result()
    for c, score in zip(cells, outputs):
        result.series.setdefault(c.kwargs["label"], []).append(
            (c.kwargs["n_vms"], score)
        )
    return result
