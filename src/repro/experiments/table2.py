"""Table 2: comparison of null RMM call latencies.

Measures the three transports of S4.3 with null payloads:

* core-gapped **asynchronous** (the vCPU run-call path of fig. 4:
  argument write, RMM service, exit write, CVM-exit IPI, wake-up thread
  scan, vCPU thread unblock, result read);
* core-gapped **synchronous** (busy-wait RPC, e.g. page-table updates);
* **same-core synchronous** (what a traditional CVM pays: world switches
  through EL3 with mitigation flushes).

Paper: 2757.6 ns / 257.7 ns / >12.8 us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.stats import Summary, summarize
from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..host.threads import HostThread, SchedClass, TBlock, TCompute
from ..rmm.core_gap import RunCall
from ..rmm.rmi import RecRunPage, RmiCommand
from .config import SystemConfig
from .system import System

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    async_ns: Summary
    sync_ns: Summary
    samecore_ns: Summary

    def rows(self) -> List[tuple]:
        return [
            ("Core-gapped asynchronous (vCPU run calls)", self.async_ns.mean),
            ("Core-gapped synchronous (e.g., page table update)", self.sync_ns.mean),
            ("Same-core synchronous", self.samecore_ns.mean),
        ]


def _null_workload_factory(vm: GuestVm, index: int):
    """A REC whose generator finishes immediately: every REC_ENTER
    returns at once with WORKLOAD_DONE -- the null run call."""
    return None  # GuestVcpu.run() with no workload yields only PowerOff


def run_table2(
    iterations: int = 300, costs: CostModel = DEFAULT_COSTS
) -> Table2Result:
    config = SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
    system = System(config, costs)

    # a 1-vCPU CVM with an empty guest: its run calls are null calls
    vm = GuestVm(
        "null", 1, _null_workload_factory, costs=costs, enable_tick=False
    )
    kvm = system.launch(vm)
    port = kvm.ports[0]  # registered with the notifier by the planner
    inbox = system.engine.dedicated[kvm.planned_cores[0]].inbox

    async_samples: List[float] = []
    sync_samples: List[float] = []
    samecore_samples: List[float] = []

    def bench_body():
        # async null run calls (fig. 4 path, measured like the paper:
        # submit to resumption with the result)
        for _ in range(iterations):
            start = system.sim.now
            yield TCompute(costs.rpc_write_ns)
            slot = port.submit(RunCall(port, kvm.realm_id, 0, RecRunPage()))
            inbox.try_put(slot.payload)
            yield TBlock(slot.claimed)
            yield TCompute(costs.rpc_read_ns)
            port.collect()
            async_samples.append(system.sim.now - start)
        # sync null RMI calls (busy-wait RPC)
        for _ in range(iterations):
            start = system.sim.now
            yield from system.planner.rmi(inbox, RmiCommand.VERSION)
            sync_samples.append(system.sim.now - start)
        # same-core null call: SMC through EL3 into the monitor and back,
        # with the mitigation flushes a trust-boundary crossing requires
        for _ in range(iterations):
            start = system.sim.now
            yield TCompute(
                costs.world_switch.round_trip()
                + costs.rmm_null_handler_ns
            )
            system.rmm.handle_rmi(RmiCommand.VERSION)
            samecore_samples.append(system.sim.now - start)

    thread = HostThread(
        "table2-bench", bench_body(), SchedClass.FIFO,
        affinity=system.host_cores,
    )
    system.kernel.add_thread(thread)
    system.run_until_event(thread.done_event)

    return Table2Result(
        async_ns=summarize(async_samples),
        sync_ns=summarize(sync_samples),
        samecore_ns=summarize(samecore_samples),
    )
