"""Chaos audit harness: workloads under fault injection, invariants on.

Runs CoreMark- and NetPIPE-shaped workloads on a core-gapped system
while a :class:`repro.faults.FaultInjector` executes a fault plan, with
every hardening knob enabled (wake-up watchdog, bounded run-call
retries, sync-RMI timeouts).  After each run the harness re-checks the
invariants that must survive *any* fault:

* the core-gap audit stays clean (faults may cost performance, never
  isolation);
* exit-count and CPU-time conservation hold
  (:func:`repro.security.audit.audit_conservation`);
* the workload either completes, or fails with a *clean, host-visible*
  error (refused admission or a recorded run error) -- never a hang,
  a guest-visible failure, or an unhandled exception.

Everything is seeded: same (scenario, plan, seed) triple replays
bit-identically, which ``tests/experiments/test_chaos_determinism.py``
checks against the sanitizer's trace digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from ..guest.actions import Compute
from ..guest.vm import GuestVm
from ..guest.workloads import (
    CoremarkStats,
    NetpipeStats,
    netpipe_workload_factory,
)
from ..host.hotplug import HotplugError
from ..host.planner import AdmissionError
from ..host.threads import HostThread, SchedClass
from ..rpc.ports import RpcTimeoutError
from ..security import CoreGapAuditor, audit_conservation
from ..sim.clock import ms, us
from ..sim.engine import SimulationError
from ..sim.timeout import RetryPolicy
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .system import System

__all__ = [
    "ChaosOutcome",
    "StormOutcome",
    "default_fault_plans",
    "digest_chaos_outcome",
    "plan_scenarios",
    "run_chaos_case",
    "run_chaos_matrix",
    "run_hotplug_storm",
    "run_storm_matrix",
    "storm_cells",
    "chaos_cells",
    "CHAOS_SCENARIOS",
]

#: workload scenarios the harness knows how to drive
CHAOS_SCENARIOS = ("coremark", "netpipe")

#: simulated-time ceiling per case; generous enough to cover full retry
#: exhaustion against a dead core (RetryPolicy(ms(1), 6) ~ 127 ms)
CASE_BUDGET_NS = ms(500)

#: time the guarded launch may take before the case counts as hung
LAUNCH_BUDGET_NS = ms(50)


@dataclass
class ChaosOutcome:
    """Result of one (scenario, plan, seed) chaos cell."""

    scenario: str
    plan: str
    seed: int
    #: completed | host_error | refused | hung
    status: str
    detail: str = ""
    host_errors: List[str] = field(default_factory=list)
    injections: Dict[str, int] = field(default_factory=dict)
    audit_problems: List[str] = field(default_factory=list)
    recoveries: Dict[str, int] = field(default_factory=dict)
    duration_ns: int = 0
    #: the finished System, for digesting/inspection (not part of repr);
    #: stripped to None when the outcome crosses a process boundary
    system: object = field(default=None, repr=False, compare=False)
    #: sanitizer trace digest, precomputed where the System still lives
    #: (always set on matrix outcomes; see :func:`digest_chaos_outcome`)
    digest: object = field(default=None, repr=False, compare=False)

    @property
    def survived(self) -> bool:
        """The run upheld the chaos contract: no hang, no audit
        violation -- completion and clean host-side errors both count."""
        return self.status != "hung" and not self.audit_problems


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------

#: SGIs the plans are scoped to: the CVM-exit IPI (8) and the host-kick
#: IPI (9).  Scheduler SGIs are out of scope -- faulting them stresses
#: the host scheduler model, not the paper's transports.
_CVM_SGIS = (8, 9)


def default_fault_plans() -> List[FaultPlan]:
    """The chaos matrix rows: one plan per fault-taxonomy entry, plus a
    fault-free control."""
    return [
        FaultPlan.of("control"),
        FaultPlan.of(
            "drop-exit-ipi",
            FaultSpec(FaultKind.IPI_DROP, rate=0.3, intids=(8,)),
        ),
        FaultPlan.of(
            "drop-kick-ipi",
            FaultSpec(FaultKind.IPI_DROP, rate=0.5, intids=(9,)),
        ),
        FaultPlan.of(
            "jitter-ipi",
            FaultSpec(
                FaultKind.IPI_DELAY, rate=0.25, delay_ns=us(50),
                intids=_CVM_SGIS,
            ),
            FaultSpec(
                FaultKind.IPI_DUPLICATE, rate=0.25, delay_ns=us(5),
                intids=_CVM_SGIS,
            ),
        ),
        FaultPlan.of(
            "stall-completion",
            FaultSpec(
                FaultKind.RPC_COMPLETION_STALL, rate=0.2, delay_ns=us(300)
            ),
        ),
        FaultPlan.of(
            "corrupt-completion",
            FaultSpec(FaultKind.RPC_COMPLETION_CORRUPT, count=1),
        ),
        FaultPlan.of(
            "wakeup-stall",
            FaultSpec(FaultKind.WAKEUP_STALL, rate=0.3, delay_ns=us(200)),
        ),
        FaultPlan.of(
            "hotplug-flaky",
            FaultSpec(FaultKind.HOTPLUG_ABORT, count=1),
        ),
        FaultPlan.of(
            "hotplug-storm",
            FaultSpec(FaultKind.HOTPLUG_ABORT, rate=1.0),
        ),
        FaultPlan.of(
            "dead-core",
            # armed after launch with after_runs=0: the core swallows
            # the very first run call, exercising retry exhaustion
            FaultSpec(FaultKind.CORE_STALL, after_runs=0),
        ),
        FaultPlan.of(
            "virtio-delay",
            FaultSpec(
                FaultKind.VIRTIO_COMPLETION_DELAY, rate=0.3, delay_ns=us(400)
            ),
        ),
    ]


def plan_scenarios(plan: FaultPlan) -> Tuple[str, ...]:
    """Scenarios a plan is meaningful for (virtio faults need I/O)."""
    if plan.kinds == (FaultKind.VIRTIO_COMPLETION_DELAY,):
        return ("netpipe",)
    return CHAOS_SCENARIOS


# ----------------------------------------------------------------------
# finite workloads (chaos needs completion, not steady state)
# ----------------------------------------------------------------------


def _finite_coremark_factory(stats: CoremarkStats, chunks: int, chunk_ns: int):
    def factory(vm: GuestVm, index: int):
        return _finite_coremark_vcpu(stats, index, chunks, chunk_ns)

    return factory


def _finite_coremark_vcpu(
    stats: CoremarkStats, index: int, chunks: int, chunk_ns: int
):
    for _ in range(chunks):
        yield Compute(chunk_ns, mem_fraction=0.35)
        stats.note_chunk(index)


def _finite_idle_vcpu(chunks: int):
    for _ in range(chunks):
        yield Compute(1_000_000)


def _finite_netpipe_factory(stats: NetpipeStats, device: str, clock):
    base = netpipe_workload_factory(
        stats, device, passthrough=False, clock=clock,
        sizes=[64, 1024, 4096], pings_per_size=2,
    )

    def factory(vm: GuestVm, index: int):
        if index == 0:
            return base(vm, index)
        return _finite_idle_vcpu(10)

    return factory


# ----------------------------------------------------------------------
# one chaos cell
# ----------------------------------------------------------------------


def run_chaos_case(
    scenario: str,
    plan: FaultPlan,
    seed: int = 0,
    n_cores: int = 6,
    n_vcpus: int = 3,
    scheduler: str = "calendar",
) -> ChaosOutcome:
    """Run one workload under one fault plan with hardening enabled.

    ``scheduler`` selects the engine's event-queue implementation —
    digest-interchangeable by contract, exposed so the scheduler
    equivalence tests can diff a chaos run per implementation.
    """
    if scenario not in CHAOS_SCENARIOS:
        raise SimulationError(f"unknown chaos scenario {scenario!r}")
    config = SystemConfig(
        mode="gapped",
        n_cores=n_cores,
        n_host_cores=1,
        seed=seed,
        trace_schedules=True,
        scheduler=scheduler,
    )
    system = System(config)
    outcome = ChaosOutcome(
        scenario=scenario, plan=plan.name, seed=seed, status="hung"
    )

    injector = FaultInjector(
        plan, system.machine.rng.fork("faults"), system.sim, system.tracer
    )
    injector.attach_gic(system.machine.gic)
    injector.attach_kernel(system.kernel)
    injector.attach_notifier(system.notifier)
    injector.attach_machine(system.machine)

    # hardening on, uniformly -- the control plan doubles as a check
    # that the hardened paths do not disturb the fault-free run
    system.notifier.watchdog_ns = us(200)
    system.planner.sync_timeout_ns = ms(2)

    if scenario == "coremark":
        stats = CoremarkStats()
        workload = _finite_coremark_factory(stats, chunks=30, chunk_ns=us(500))
    else:
        stats = NetpipeStats()
        workload = _finite_netpipe_factory(
            stats, "virtio-net0", clock=lambda: system.sim.now
        )
    vm = GuestVm(f"chaos-{scenario}", n_vcpus, workload)

    # guarded launch: admission refusals and transport timeouts are part
    # of the contract (clean host-side failure), not test crashes
    def launch_body():
        try:
            kvm = yield from system.planner.launch_cvm(vm)
        except (AdmissionError, HotplugError, RpcTimeoutError) as exc:
            system.tracer.count("chaos_launch_refused")
            return ("refused", str(exc))
        return ("ok", kvm)

    launcher = HostThread(
        name="chaos-launch",
        body=launch_body(),
        sched_class=SchedClass.FAIR,
        affinity=system.host_cores,
    )
    system.kernel.add_thread(launcher)
    start_ns = system.sim.now
    try:
        system.run_until_event(launcher.done_event, limit_ns=LAUNCH_BUDGET_NS)
    except SimulationError as exc:
        outcome.detail = f"launch hung: {exc}"
        return _finalize(outcome, system, injector, start_ns)

    status, payload = launcher.result
    if status == "refused":
        outcome.status = "refused"
        outcome.detail = payload
        return _finalize(outcome, system, injector, start_ns)

    kvm = payload
    for port in kvm.ports.values():
        injector.attach_port(port)
    injector.attach_engine(system.engine)
    kvm.run_wait_retry = RetryPolicy(ms(1), max_retries=6)
    if scenario == "netpipe":
        device = system.add_virtio_net(kvm, echo_peer=True)
        injector.attach_device(device)
    system.start(kvm)

    try:
        system.run_until_event(kvm.done_event, limit_ns=CASE_BUDGET_NS)
    except SimulationError as exc:
        outcome.detail = f"workload hung: {exc}"
        return _finalize(outcome, system, injector, start_ns, kvm)

    outcome.status = "host_error" if kvm.run_errors else "completed"
    return _finalize(outcome, system, injector, start_ns, kvm)


def _finalize(
    outcome: ChaosOutcome,
    system: System,
    injector: FaultInjector,
    start_ns: int,
    kvm=None,
) -> ChaosOutcome:
    """Post-run bookkeeping + the invariant checks every cell must pass."""
    system.finish()
    outcome.system = system
    outcome.duration_ns = system.sim.now - start_ns
    outcome.injections = dict(injector.injected)
    if kvm is not None:
        outcome.host_errors = [str(err.value) for err in kvm.run_errors]
        outcome.recoveries = {
            "watchdog_polls": system.notifier.watchdog_polls,
            "watchdog_recoveries": system.notifier.watchdog_recoveries,
            "run_retries": kvm.run_retries,
            "run_self_claims": kvm.run_self_claims,
        }

    problems: List[str] = []
    report = CoreGapAuditor().audit(system.machine, system.tracer)
    problems += [f"core-gap: {v}" for v in report.sharing]
    problems += [f"residency: {v}" for v in report.residency]
    problems += audit_conservation(system.tracer, system.sim.now)
    if kvm is not None:
        for port in kvm.ports.values():
            outstanding = port.submit_count - port.complete_count
            if outstanding not in (0, 1) or (
                outstanding == 1 and port.slot.state != "submitted"
            ):
                problems.append(
                    f"port {port.name}: {port.submit_count} submits vs "
                    f"{port.complete_count} completions "
                    f"(slot {port.slot.state!r})"
                )
    outcome.audit_problems = problems
    return outcome


def digest_chaos_outcome(outcome: ChaosOutcome):
    """A :class:`repro.lint.sanitizer.RunDigest` of one chaos run.

    Covers the full schedule trace (records, spans, counters) plus the
    outcome's own observables, so two digests compare bit-identical iff
    the runs were.  Requires ``outcome.system`` (digest where the run
    happened — in the worker, for parallel cells).
    """
    from ..lint.sanitizer import RunDigest

    if outcome.system is None:
        raise SimulationError(
            f"outcome ({outcome.scenario}, {outcome.plan}) has no System "
            "attached; digest it before crossing a process boundary"
        )
    tracer = outcome.system.tracer
    records = [
        f"{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
        for r in tracer.records
    ]
    spans = [f"{s.core}|{s.domain}|{s.start}|{s.end}" for s in tracer.spans]
    counters = {k: int(v) for k, v in sorted(tracer.counters.items())}
    metrics = {
        "status": outcome.status,
        "detail": outcome.detail,
        "host_errors": outcome.host_errors,
        "injections": dict(sorted(outcome.injections.items())),
        "recoveries": dict(sorted(outcome.recoveries.items())),
        "duration_ns": outcome.duration_ns,
        "end_ns": outcome.system.sim.now,
    }
    return RunDigest(records, spans, counters, metrics)


def _chaos_cell(
    scenario: str,
    plan: FaultPlan,
    seed: int,
    n_cores: int = 6,
    n_vcpus: int = 3,
) -> ChaosOutcome:
    """One matrix cell, shippable across processes: run the case, digest
    the trace where the live System still exists, then strip it (a
    finished System holds generators and cannot pickle)."""
    outcome = run_chaos_case(
        scenario, plan, seed=seed, n_cores=n_cores, n_vcpus=n_vcpus
    )
    outcome.digest = digest_chaos_outcome(outcome)
    outcome.system = None
    return outcome


def chaos_cells(
    seed: int = 0,
    plans: Optional[Sequence[FaultPlan]] = None,
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
) -> List[Cell]:
    """The (plan x scenario) chaos matrix as independent runner cells."""
    return [
        cell(
            f"chaos/{plan.name}/{scenario}",
            _chaos_cell,
            scenario=scenario,
            plan=plan,
            seed=seed,
        )
        for plan in (plans if plans is not None else default_fault_plans())
        for scenario in scenarios
        if scenario in plan_scenarios(plan)
    ]


def run_chaos_matrix(
    seed: int = 0,
    plans: Optional[Sequence[FaultPlan]] = None,
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    jobs: Optional[int] = None,
) -> List[ChaosOutcome]:
    """Run the full (plan x scenario) chaos matrix.

    Serial or parallel, every outcome carries a precomputed trace
    ``digest`` and no ``system`` — the same contract either way, so
    digest comparisons between ``jobs=1`` and ``jobs=N`` are exact.
    """
    return run_cells(chaos_cells(seed, plans, scenarios), jobs=jobs)


# ---------------------------------------------------------------------------
# hotplug storm: random lifecycle churn under serving load
# ---------------------------------------------------------------------------


@dataclass
class StormOutcome:
    """One hotplug-storm run: lifecycle tallies plus invariant verdicts."""

    seed: int
    rounds: int
    #: operations actually performed, by kind (resize/bounce/evict/admit)
    ops: Dict[str, int] = field(default_factory=dict)
    #: the elastic controller's verb tallies
    counts: Dict[str, int] = field(default_factory=dict)
    audit_problems: List[str] = field(default_factory=list)
    conservation: List[str] = field(default_factory=list)
    conservation_ok: bool = True
    #: per-server digested counter maps + end times
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    end_ns: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return (
            not self.audit_problems
            and not self.conservation
            and self.conservation_ok
        )


def run_hotplug_storm(
    seed: int = 0,
    rounds: int = 12,
    epoch_ns: int = ms(5),
) -> StormOutcome:
    """Random core-hotplug churn (avocado-style) under open-loop serving.

    Every round the storm draws one operation from a seeded stream --
    resize a tenant to a random vCPU count (shrink/park + grow through
    the planner's delegated hotplug path), bounce a random free core
    (host-side offline then online, exactly the avocado CPU-hotplug
    exercise), or evict and re-admit a sacrificial tenant -- then the
    epoch serves on.  After every transition the elastic controller
    re-runs the core-gap audit; at the end the storm asserts request
    conservation and exit/CPU-time accounting on every server.
    """
    from ..fleet.elastic import FleetController, storm_stream
    from ..fleet.spec import ScenarioSpec, redis_tenant, uniform_rack

    spec = ScenarioSpec(
        servers=uniform_rack(
            2,
            SystemConfig(mode="gapped", n_cores=12, n_host_cores=2),
            seed=seed,
        ),
        tenants=(
            redis_tenant("storm-a", n_vcpus=4, rate_rps=3000.0),
            redis_tenant("storm-b", n_vcpus=3, rate_rps=2000.0),
        ),
        duration_ns=(rounds + 1) * epoch_ns,
        seed=seed,
        placement="spread",
    )
    controller = FleetController(spec)
    horizon = spec.duration_ns
    controller.start_serving(horizon)
    rng = storm_stream(seed)
    outcome = StormOutcome(seed=seed, rounds=rounds)
    ops = outcome.ops
    evicted: Optional[str] = None

    for round_index in range(rounds):
        controller.advance_to((round_index + 1) * epoch_ns)
        op = rng.choice(("resize", "resize", "bounce", "churn"))
        if op == "resize":
            name = rng.choice(sorted(controller.where))
            spec_vcpus = controller.tenants[name].vm.n_vcpus
            target = rng.randrange(1, spec_vcpus + 1)
            controller.resize(name, target)
            ops["resize"] = ops.get("resize", 0) + 1
        elif op == "bounce":
            server = controller.fleet.servers[
                rng.randrange(len(controller.fleet.servers))
            ]
            free = server.system.planner.free_cores()
            if not free:
                continue
            core = free[rng.randrange(len(free))]
            fallback = min(server.system.host_cores)
            planner = server.system.planner

            def bounce(planner=planner, core=core, fallback=fallback):
                yield from planner.hotplug.offline(core, fallback)
                yield from planner.hotplug.online(core)

            controller._run_planner(server, f"storm-bounce:{core}", bounce())
            controller.audit_transitions(server, f"bounce:{core}")
            ops["bounce"] = ops.get("bounce", 0) + 1
        else:  # churn: evict a tenant, re-admit it next time around
            if evicted is None:
                name = rng.choice(sorted(controller.where))
                controller.evict(name, drain_ns=ms(2), reason="storm")
                evicted = name
            else:
                window = horizon - controller.t_ns
                if window > 0:
                    controller.admit(
                        controller.tenants[evicted], window_ns=window
                    )
                evicted = None
            ops["churn"] = ops.get("churn", 0) + 1

    controller.advance_to(horizon)
    controller.finish()
    result = controller.outcome()
    outcome.counts = result.counts
    outcome.audit_problems = list(result.audit_problems)
    outcome.conservation_ok = result.conservation_ok
    for server in controller.fleet.servers:
        system = server.system
        outcome.conservation.extend(
            f"server{server.index}: {problem}"
            for problem in audit_conservation(system.tracer, system.sim.now)
        )
    outcome.counters = result.counters
    outcome.end_ns = result.end_ns
    return outcome


def storm_cells(seeds: Sequence[int] = (0, 1, 2)) -> List[Cell]:
    """Hotplug-storm smoke matrix: one cell per seed."""
    return [
        cell(f"storm/seed{seed}", run_hotplug_storm, seed=seed)
        for seed in seeds
    ]


def run_storm_matrix(
    seeds: Sequence[int] = (0, 1, 2), jobs: Optional[int] = None
) -> List[StormOutcome]:
    return run_cells(storm_cells(seeds), jobs=jobs)
