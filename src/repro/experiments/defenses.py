"""The ``defenses`` sweep: every workload under every isolation policy.

The paper's headline claim is comparative -- core-gapping beats
flush-on-switch mitigations on *both* security and overhead (S1, S7) --
but every other sweep in this repo only varies the mode axis.  This one
varies the defense: it runs scaled-down versions of the fig. 6 CoreMark,
fig. 8 NetPIPE, fig. 9 IOzone and Table 5 Redis harnesses plus the
fleet consolidation scenario under each registered isolation policy
(:mod:`repro.hw.policy`), and scores residual leakage with the seeded
prime+probe observer of :mod:`repro.security.policy`.

Every (policy, workload) pair is one independent runner cell, so the
sweep is ``--jobs``-safe and digest-deterministic end to end::

    PYTHONPATH=src python -m repro.experiments.runner defenses --jobs 4

The rendered verdict lives in ``benchmarks/results/report_defenses.md``
and the EXPERIMENTS.md "Defense comparison" section
(``python -m repro.obs.report defenses``).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..guest.workloads.iozone import IozoneStats, iozone_workload_factory
from ..guest.workloads.netpipe import NetpipeStats, netpipe_workload_factory
from ..guest.workloads.redis import OP_GET, RedisClientSim, redis_server_factory
from ..sim.clock import ms, sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .system import System
from .workbench import run_coremark

__all__ = ["POLICY_MATRIX", "defenses_cells", "run_defenses"]

#: (policy, mode) pairs under comparison: each policy runs under the
#: mode it canonically pairs with (repro.hw.policy._DEFAULT_FOR_MODE)
POLICY_MATRIX: Tuple[Tuple[str, str], ...] = (
    ("core-gap", "gapped"),
    ("flush", "shared-cvm"),
    ("none", "shared"),
)


def _config(policy: str, mode: str, n_cores: int) -> SystemConfig:
    return SystemConfig(mode=mode, n_cores=n_cores, policy=policy)


# ---------------------------------------------------------------------------
# cells (top-level functions: they must pickle across worker processes)
# ---------------------------------------------------------------------------


def _coremark_cell(
    policy: str, mode: str, n_cores: int, duration_ns: int, costs: CostModel
) -> Dict[str, Any]:
    run = run_coremark(
        _config(policy, mode, n_cores),
        n_cores_used=n_cores,
        duration_ns=duration_ns,
        costs=costs,
    )
    return {
        "score": run.score,
        "exits_total": run.exit_counts.get("exits_total", 0),
    }


def _netpipe_cell(
    policy: str,
    mode: str,
    sizes: List[int],
    pings: int,
    costs: CostModel,
) -> Dict[str, Any]:
    n_cores = 4
    config = _config(policy, mode, n_cores)
    system = System(config, costs)
    stats = NetpipeStats()
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "netpipe",
        n_vcpus,
        netpipe_workload_factory(
            stats,
            "sriov-net0",
            True,
            clock=lambda: system.sim.now,
            sizes=sizes,
            pings_per_size=pings,
            costs=costs,
        ),
        costs=costs,
    )
    kvm = system.launch(vm)
    system.add_sriov_nic(kvm, "sriov-net0", echo_peer=True)
    system.start(kvm)
    expected = len(sizes) * pings
    system.run_until(
        lambda: sum(len(v) for v in stats.rtt_ns.values()) >= expected,
        limit_ns=sec(30),
    )
    largest = max(sizes)
    return {
        "latency_us": stats.latency_us(largest),
        "throughput_gbps": stats.throughput_gbps(largest),
    }


def _iozone_cell(
    policy: str,
    mode: str,
    records: List[int],
    ops: int,
    costs: CostModel,
) -> Dict[str, Any]:
    n_cores = 4
    config = _config(policy, mode, n_cores)
    system = System(config, costs)
    stats = IozoneStats()
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "iozone",
        n_vcpus,
        iozone_workload_factory(
            stats,
            "virtio-blk0",
            clock=lambda: system.sim.now,
            records=records,
            ops_per_record=ops,
            costs=costs,
        ),
        costs=costs,
    )
    kvm = system.launch(vm)
    system.add_virtio_blk(kvm, "virtio-blk0")
    system.start(kvm)
    expected = len(records) * 2 * ops
    system.run_until(
        lambda: sum(len(v) for v in stats.samples.values()) >= expected,
        limit_ns=sec(120),
    )
    largest = max(records)
    return {
        "write_mib_s": stats.throughput_mib_s(largest, "blk_write"),
        "read_mib_s": stats.throughput_mib_s(largest, "blk_read"),
    }


def _redis_cell(
    policy: str,
    mode: str,
    n_cores: int,
    n_requests: int,
    costs: CostModel,
) -> Dict[str, Any]:
    config = _config(policy, mode, n_cores)
    system = System(config, costs)
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "redis",
        n_vcpus,
        redis_server_factory("sriov-net0", costs),
        costs=costs,
    )
    kvm = system.launch(vm)
    device = system.add_sriov_nic(kvm, "sriov-net0")
    system.start(kvm)
    client = RedisClientSim(
        system.sim, device, n_vcpus, OP_GET, n_requests, n_clients=50,
        costs=costs,
    )
    client.start()
    system.run_until(lambda: client.done, limit_ns=sec(120))
    stats = client.stats
    return {
        "throughput_krps": stats.throughput_krps(OP_GET.name),
        "mean_ms": stats.mean_ms(OP_GET.name),
        "p95_ms": stats.percentile_ms(OP_GET.name, 95),
        "p99_ms": stats.percentile_ms(OP_GET.name, 99),
    }


def _fleet_cell(
    policy: str,
    mode: str,
    level: int,
    rate_rps: float,
    duration_ns: int,
    seed: int,
    costs: CostModel,
) -> Dict[str, Any]:
    from ..fleet.placement import place
    from ..fleet.scenario import boot_server, run_server
    from ..fleet.sweep import consolidation_scenario

    spec = consolidation_scenario(
        level,
        mode,
        n_servers=1,
        rate_rps=rate_rps,
        duration_ns=duration_ns,
        seed=seed,
        costs=costs,
        policy=policy,
    )
    placement = place(spec)
    if placement.rejected:
        names = [name for name, _ in placement.rejected]
        raise ValueError(f"defenses fleet cell {policy}: rejected {names}")
    server = boot_server(spec, placement, 0, costs)
    tenants = run_server(server, spec)
    issued = sum(r.issued for r in tenants)
    violations = sum(r.slo_violations for r in tenants)
    return {
        "tenants": len(tenants),
        "issued": issued,
        "completed": sum(r.completed for r in tenants),
        "throughput_krps": sum(r.throughput_krps for r in tenants),
        "p99_ms": max((r.p99_ms for r in tenants), default=0.0),
        "slo_violation_pct": 100.0 * violations / issued if issued else 0.0,
    }


def _leakage_cell(policy: str, n_bits: int, seed: int) -> Dict[str, Any]:
    from ..hw.policy import POLICIES
    from ..security.policy import leakage_probe, tolerated_residency

    result = leakage_probe(POLICIES[policy], n_bits=n_bits, seed=seed)
    row = asdict(result)
    row["residual_structures"] = list(result.residual_structures)
    row["scrubbed_structures"] = list(result.scrubbed_structures)
    row["tolerated_residency"] = sorted(tolerated_residency(POLICIES[policy]))
    row["unexpected_residency"] = sorted(
        set(result.residual_structures)
        - tolerated_residency(POLICIES[policy])
    )
    return row


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def defenses_cells(
    coremark_cores: int = 16,
    coremark_duration_ns: int = ms(200),
    netpipe_sizes: Sequence[int] = (1024, 65536),
    netpipe_pings: int = 20,
    iozone_records: Sequence[int] = (4096, 65536),
    iozone_ops: int = 4,
    redis_cores: int = 8,
    redis_requests: int = 3000,
    fleet_level: int = 2,
    fleet_rate_rps: float = 4000.0,
    fleet_duration_ns: int = ms(150),
    leakage_bits: int = 64,
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    """The defense matrix as independent runner cells, in merge order."""
    cells: List[Cell] = []
    for policy, mode in POLICY_MATRIX:
        cells.extend(
            [
                cell(
                    f"defenses/{policy}/coremark",
                    _coremark_cell,
                    policy=policy,
                    mode=mode,
                    n_cores=coremark_cores,
                    duration_ns=coremark_duration_ns,
                    costs=costs,
                ),
                cell(
                    f"defenses/{policy}/netpipe",
                    _netpipe_cell,
                    policy=policy,
                    mode=mode,
                    sizes=list(netpipe_sizes),
                    pings=netpipe_pings,
                    costs=costs,
                ),
                cell(
                    f"defenses/{policy}/iozone",
                    _iozone_cell,
                    policy=policy,
                    mode=mode,
                    records=list(iozone_records),
                    ops=iozone_ops,
                    costs=costs,
                ),
                cell(
                    f"defenses/{policy}/redis",
                    _redis_cell,
                    policy=policy,
                    mode=mode,
                    n_cores=redis_cores,
                    n_requests=redis_requests,
                    costs=costs,
                ),
                cell(
                    f"defenses/{policy}/fleet",
                    _fleet_cell,
                    policy=policy,
                    mode=mode,
                    level=fleet_level,
                    rate_rps=fleet_rate_rps,
                    duration_ns=fleet_duration_ns,
                    seed=seed,
                    costs=costs,
                ),
                cell(
                    f"defenses/{policy}/leakage",
                    _leakage_cell,
                    policy=policy,
                    n_bits=leakage_bits,
                    seed=seed,
                ),
            ]
        )
    return cells


def run_defenses(
    jobs: Optional[int] = None, **cell_kwargs: Any
) -> Dict[str, Any]:
    """Run the matrix; returns plain data keyed policy -> workload.

    ``cell_kwargs`` forwards to :func:`defenses_cells` (tests shrink the
    workloads; the report uses the defaults).
    """
    from ..hw.policy import POLICIES
    from ..isa.smc import WorldSwitchCosts

    cells = defenses_cells(**cell_kwargs)
    outputs = run_cells(cells, jobs=jobs)
    policies = [policy for policy, _ in POLICY_MATRIX]
    overhead: Dict[str, Dict[str, Any]] = {p: {} for p in policies}
    leakage: Dict[str, Dict[str, Any]] = {}
    for c, output in zip(cells, outputs):
        _, policy, workload = c.cell_id.split("/")
        if workload == "leakage":
            leakage[policy] = output
        else:
            overhead[policy][workload] = output
    ws = WorldSwitchCosts()
    return {
        "policies": policies,
        "overhead": overhead,
        "leakage": leakage,
        "flush_table": [
            [name, ns] for name, ns in POLICIES["flush"].flush_costs.table()
        ],
        "world_switch_round_trip_ns": {
            p: POLICIES[p].world_switch_round_trip_ns(ws) for p in policies
        },
    }
