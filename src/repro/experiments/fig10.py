"""Fig. 10: Linux kernel build time vs core count.

``make -jN`` on a virtio disk.  The compile phase is CPU/memory bound
(core-gapped cores run it undisturbed); every source read and object
write goes through exit-intensive virtio emulation contending for the
host core.  The paper shows both effects roughly cancelling: core-gapped
CVMs track the shared-core baseline despite one fewer vCPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..guest.workloads.kbuild import (
    KbuildConfig,
    KbuildStats,
    kbuild_workload_factory,
)
from ..sim.clock import sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .system import System

__all__ = ["Fig10Result", "run_fig10", "fig10_cells", "DEFAULT_CORE_COUNTS"]

DEFAULT_CORE_COUNTS = [4, 8, 16]


@dataclass
class Fig10Result:
    """(mode -> [(cores, build seconds)])."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def build_seconds(self, mode: str, n_cores: int) -> Optional[float]:
        for x, y in self.series.get(mode, []):
            if x == n_cores:
                return y
        return None


def _run_one(
    mode: str, n_cores: int, build: KbuildConfig, costs: CostModel
) -> float:
    config = SystemConfig(mode=mode, n_cores=n_cores)
    system = System(config, costs)
    stats = KbuildStats()
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "kbuild",
        n_vcpus,
        kbuild_workload_factory(
            build, stats, "virtio-blk0",
            clock=lambda: system.sim.now, costs=costs,
        ),
        costs=costs,
        memory_gib=48,
    )
    kvm = system.launch(vm)
    system.add_virtio_blk(kvm, "virtio-blk0")
    start = system.sim.now
    system.start(kvm)
    system.run_until_vm_done(kvm, limit_ns=sec(600))
    return (stats.finished_at - start) / 1e9


def fig10_cells(
    core_counts: Optional[List[int]] = None,
    build: Optional[KbuildConfig] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    core_counts = core_counts or DEFAULT_CORE_COUNTS
    build = build or KbuildConfig()
    return [
        cell(
            f"fig10/{mode}/{n_cores}",
            _run_one,
            mode=mode,
            n_cores=n_cores,
            build=build,
            costs=costs,
        )
        for mode in ("shared", "gapped")
        for n_cores in core_counts
    ]


def run_fig10(
    core_counts: Optional[List[int]] = None,
    build: Optional[KbuildConfig] = None,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Fig10Result:
    cells = fig10_cells(core_counts, build, costs)
    outputs = run_cells(cells, jobs=jobs)
    result = Fig10Result()
    for c, seconds in zip(cells, outputs):
        result.series.setdefault(c.kwargs["mode"], []).append(
            (c.kwargs["n_cores"], seconds)
        )
    return result
