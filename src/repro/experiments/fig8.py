"""Fig. 8: NetPIPE TCP latency/throughput, virtio vs SR-IOV.

The guest pings an external echo peer across message sizes, through
either a kvmtool-emulated virtio NIC (exit-intensive: every send is an
MMIO doorbell handled on the host core) or an SR-IOV VF of an
E2000-class IPU (exit-free data path; the host only injects the RX
interrupt).

Paper shape: virtio on core-gapped CVMs suffers up to 2x latency and
30-70% lower throughput; SR-IOV is within 10-20 us of the baseline with
up to ~5% *higher* throughput at large sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..guest.workloads.netpipe import (
    DEFAULT_SIZES,
    NetpipeStats,
    netpipe_workload_factory,
)
from ..sim.clock import sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .system import System

__all__ = ["Fig8Result", "run_fig8", "fig8_cells"]


@dataclass
class Fig8Result:
    """(mode, transport) -> NetpipeStats."""

    stats: Dict[Tuple[str, str], NetpipeStats] = field(default_factory=dict)
    sizes: List[int] = field(default_factory=list)

    def latency_us(self, mode: str, transport: str, size: int) -> float:
        return self.stats[(mode, transport)].latency_us(size)

    def throughput_gbps(self, mode: str, transport: str, size: int) -> float:
        return self.stats[(mode, transport)].throughput_gbps(size)


def _run_one(
    mode: str,
    transport: str,
    sizes: List[int],
    pings: int,
    costs: CostModel,
) -> NetpipeStats:
    n_cores = 4
    config = SystemConfig(mode=mode, n_cores=n_cores)
    system = System(config, costs)
    stats = NetpipeStats()
    passthrough = transport == "sriov"
    device_name = "sriov-net0" if passthrough else "virtio-net0"
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "netpipe",
        n_vcpus,
        netpipe_workload_factory(
            stats,
            device_name,
            passthrough,
            clock=lambda: system.sim.now,
            sizes=sizes,
            pings_per_size=pings,
            costs=costs,
        ),
        costs=costs,
    )
    kvm = system.launch(vm)
    if passthrough:
        system.add_sriov_nic(kvm, device_name, echo_peer=True)
    else:
        system.add_virtio_net(kvm, device_name, echo_peer=True)
    system.start(kvm)
    expected = len(sizes) * pings
    system.run_until(
        lambda: sum(len(v) for v in stats.rtt_ns.values()) >= expected,
        limit_ns=sec(30),
    )
    return stats


def fig8_cells(
    sizes: Optional[List[int]] = None,
    pings: int = 20,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    sizes = list(sizes or DEFAULT_SIZES)
    return [
        cell(
            f"fig8/{mode}/{transport}",
            _run_one,
            mode=mode,
            transport=transport,
            sizes=sizes,
            pings=pings,
            costs=costs,
        )
        for mode in ("shared", "gapped")
        for transport in ("virtio", "sriov")
    ]


def run_fig8(
    sizes: Optional[List[int]] = None,
    pings: int = 20,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Fig8Result:
    cells = fig8_cells(sizes, pings, costs)
    outputs = run_cells(cells, jobs=jobs)
    result = Fig8Result(sizes=list(sizes or DEFAULT_SIZES))
    for c, stats in zip(cells, outputs):
        result.stats[(c.kwargs["mode"], c.kwargs["transport"])] = stats
    return result
