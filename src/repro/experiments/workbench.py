"""Shared experiment plumbing: build a system, run a workload, collect.

Each table/figure module composes these helpers; keeping them in one
place guarantees every experiment accounts resources the same way
(same number of physical cores per comparison, as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..guest.workloads import (
    CoremarkStats,
    coremark_score,
    coremark_workload_factory,
)
from ..sim.clock import ms, sec
from .config import SystemConfig
from .system import System

__all__ = [
    "CoremarkRun",
    "run_coremark",
    "vcpus_for",
    "build_system",
]


def vcpus_for(config: SystemConfig, n_cores_used: int) -> int:
    """Fair accounting (S2.3/S5.1): a workload given N physical cores
    gets N vCPUs shared-core but N-1 vCPUs core-gapped (the host core
    is part of the budget)."""
    if config.is_gapped:
        return max(1, n_cores_used - config.n_host_cores)
    return n_cores_used


def build_system(
    config: SystemConfig, costs: CostModel = DEFAULT_COSTS
) -> System:
    return System(config, costs)


@dataclass
class CoremarkRun:
    """Result of one CoreMark-PRO run."""

    config: SystemConfig
    n_vcpus: int
    duration_ns: int
    score: float
    exit_counts: Dict[str, int]
    run_to_run_ns: List[float] = field(default_factory=list)
    local_timer_injects: int = 0


def run_coremark(
    config: SystemConfig,
    n_cores_used: Optional[int] = None,
    duration_ns: int = sec(2),
    costs: CostModel = DEFAULT_COSTS,
    vm_list: Optional[List[int]] = None,
) -> CoremarkRun:
    """Run CoreMark-PRO on one or more VMs and score the aggregate.

    ``vm_list`` gives explicit per-VM vCPU counts (fig. 7); otherwise a
    single VM sized by the fair-accounting rule runs (fig. 6).
    """
    system = build_system(config, costs)
    stats = CoremarkStats()
    if vm_list is None:
        n_cores_used = n_cores_used or config.n_cores
        vm_list = [vcpus_for(config, n_cores_used)]
    kvms = []
    for serial, n_vcpus in enumerate(vm_list):
        vm = GuestVm(
            f"coremark{serial}",
            n_vcpus,
            coremark_workload_factory(stats),
            costs=costs,
        )
        kvms.append(system.launch(vm))
    for kvm in kvms:
        system.start(kvm)
    start = system.sim.now
    system.run_for(duration_ns)
    elapsed = system.sim.now - start
    system.finish()
    return CoremarkRun(
        config=config,
        n_vcpus=sum(vm_list),
        duration_ns=elapsed,
        score=coremark_score(stats, elapsed),
        exit_counts=system.exit_counts(),
        run_to_run_ns=system.tracer.samples("run_to_run_ns"),
        local_timer_injects=system.tracer.counters.get(
            "rmm_local_timer_inject", 0
        ),
    )
