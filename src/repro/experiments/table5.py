"""Table 5: Redis benchmark over SR-IOV networking.

redis-benchmark with 50 closed-loop clients and 512-byte objects runs
SET, GET and LRANGE-100 against a Redis server in the guest.  The
16-core budget gives the shared-core baseline 16 vCPUs and the
core-gapped CVM 15 vCPUs + 1 host core.

Paper shape: core gapping delivers ~10% *higher* throughput (the server
saturates guest CPUs, which run undisturbed on dedicated cores) but
higher tail latency (up to ~20% at p99) from interrupt-delivery
contention on the host core -- except LRANGE-100, whose long
memory-intensive queries benefit outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..guest.workloads.redis import (
    OP_GET,
    OP_LRANGE_100,
    OP_SET,
    RedisClientSim,
    RedisOp,
    RedisStats,
    redis_server_factory,
)
from ..sim.clock import sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .system import System

__all__ = ["Table5Row", "Table5Result", "run_table5", "table5_cells", "BENCH_OPS"]

BENCH_OPS: List[RedisOp] = [OP_SET, OP_GET, OP_LRANGE_100]


@dataclass
class Table5Row:
    op: str
    mode: str
    throughput_krps: float
    mean_ms: float
    p95_ms: float
    p99_ms: float


@dataclass
class Table5Result:
    rows: List[Table5Row] = field(default_factory=list)

    def row(self, op: str, mode: str) -> Table5Row:
        for row in self.rows:
            if row.op == op and row.mode == mode:
                return row
        raise KeyError((op, mode))


def _run_one(
    mode: str, op: RedisOp, n_requests: int, costs: CostModel
) -> Table5Row:
    n_cores = 16
    config = SystemConfig(mode=mode, n_cores=n_cores)
    system = System(config, costs)
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "redis",
        n_vcpus,
        redis_server_factory("sriov-net0", costs),
        costs=costs,
    )
    kvm = system.launch(vm)
    device = system.add_sriov_nic(kvm, "sriov-net0")
    system.start(kvm)
    client = RedisClientSim(
        system.sim, device, n_vcpus, op, n_requests, n_clients=50,
        costs=costs,
    )
    client.start()
    system.run_until(lambda: client.done, limit_ns=sec(120))
    stats = client.stats
    return Table5Row(
        op=op.name,
        mode=mode,
        throughput_krps=stats.throughput_krps(op.name),
        mean_ms=stats.mean_ms(op.name),
        p95_ms=stats.percentile_ms(op.name, 95),
        p99_ms=stats.percentile_ms(op.name, 99),
    )


def table5_cells(
    n_requests: int = 20_000, costs: CostModel = DEFAULT_COSTS
) -> List[Cell]:
    return [
        cell(
            f"table5/{op.name}/{mode}",
            _run_one,
            mode=mode,
            op=op,
            # LRANGE-100 queries are ~3x the work of SET/GET
            n_requests=n_requests if op is not OP_LRANGE_100 else n_requests // 3,
            costs=costs,
        )
        for op in BENCH_OPS
        for mode in ("shared", "gapped")
    ]


def run_table5(
    n_requests: int = 20_000,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Table5Result:
    cells = table5_cells(n_requests, costs)
    return Table5Result(rows=run_cells(cells, jobs=jobs))
