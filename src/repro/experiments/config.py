"""Experiment configurations and calibration targets.

``SystemConfig`` selects one column of the evaluation matrix:

===============  ==============================================================
``shared``        paper baseline: non-confidential shared-core VM
``shared-cvm``    extrapolated shared-core *confidential* VM (S5.1/S5.5 argue
                  core gapping looks even better against this; we can measure)
``gapped``        core-gapped CVM (the contribution)
===============  ==============================================================

plus the two fig. 6 ablations: ``busywait=True`` (Quarantine-style
yield-polling run calls) and ``delegation=False`` (no RMM interrupt
delegation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..hw.policy import IsolationPolicy, default_policy_name, resolve_policy
from ..sim.clock import ms, us

__all__ = ["SystemConfig", "PAPER_TARGETS"]


@dataclass(frozen=True)
class SystemConfig:
    """Knobs for building one simulated system."""

    mode: str = "gapped"  # shared | shared-cvm | gapped
    n_cores: int = 16
    #: host cores reserved for exit handling / VMM threads (gapped mode);
    #: the paper's experiments use exactly one
    n_host_cores: int = 1
    busywait: bool = False
    delegation: bool = True
    #: per-core kernel background noise (period, burst); None disables.
    #: Defaults model kworkers/RCU/timers on an idle cloud host.
    housekeeping: Optional[Tuple[int, int]] = (ms(10), us(150))
    seed: int = 0
    trace_schedules: bool = False
    #: same-timestamp event ordering ("fifo" | "lifo" | "seeded:N").
    #: Anything but the default exists for the schedule-race sanitizer
    #: (repro.lint.sanitizer); results must not depend on it.
    tie_break: str = "fifo"
    #: event-queue implementation ("calendar" | "heap").  Digest-
    #: interchangeable by contract; the knob exists for the scheduler
    #: equivalence tests and as an escape hatch.
    scheduler: str = "calendar"
    #: model long uniform compute phases as one interruptible span
    #: instead of per-chunk delays.  Digest-identical to the expansion
    #: whenever nothing needs mid-span visibility; spans de-coalesce
    #: transparently when tracing/faults/profiling do.
    coalesce_compute: bool = False
    #: isolation policy ("core-gap" | "flush" | "none"); None derives
    #: the policy the mode always implied (gapped -> core-gap,
    #: shared-cvm -> flush, shared -> none), which is bit-identical to
    #: pre-policy behavior.  See repro.hw.policy.
    policy: Optional[str] = None

    def __post_init__(self) -> None:
        # fail at construction, not mid-boot, on an illegal pair
        # (e.g. mode="gapped" with policy="flush")
        resolve_policy(self.mode, self.policy)

    @property
    def is_gapped(self) -> bool:
        return self.mode == "gapped"

    def resolved_policy_name(self) -> str:
        """The effective policy name (explicit, or derived from mode)."""
        if self.policy is not None:
            return self.policy
        return default_policy_name(self.mode)

    def resolved_policy(self) -> IsolationPolicy:
        """The strategy object the System threads through its stack."""
        return resolve_policy(self.mode, self.policy)

    def label(self) -> str:
        parts = [self.mode]
        if self.is_gapped:
            if self.busywait:
                parts.append("busywait")
            if not self.delegation:
                parts.append("nodeleg")
        if self.resolved_policy_name() != default_policy_name(self.mode):
            parts.append(f"policy={self.policy}")
        return "+".join(parts)


#: the paper's published numbers, used by benches to report side by side
PAPER_TARGETS = {
    "table2_async_ns": 2757.6,
    "table2_sync_ns": 257.7,
    "table2_samecore_ns": 12_800.0,
    "table3_vipi_nodeleg_us": 43.9,
    "table3_vipi_deleg_us": 2.22,
    "table3_vipi_shared_us": 3.85,
    "table4_irq_exits_nodeleg": 33_954,
    "table4_irq_exits_deleg": 390,
    "table4_total_exits_nodeleg": 37_712,
    "table4_total_exits_deleg": 1_324,
    "run_to_run_us": 26.18,
    "table5": {
        "SET": {"shared": (51.7, 0.52, 0.60, 1.20), "gapped": (56.2, 0.63, 0.97, 1.44)},
        "GET": {"shared": (48.8, 0.54, 0.64, 1.20), "gapped": (55.3, 0.57, 0.78, 1.24)},
        "LRANGE_100": {"shared": (11.6, 1.51, 2.03, 2.38), "gapped": (14.5, 1.24, 1.56, 1.82)},
    },
}
