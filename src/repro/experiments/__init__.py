"""Experiment harnesses: system builder, configs, per-table/figure runners."""

from .config import PAPER_TARGETS, SystemConfig
from .system import System

__all__ = ["PAPER_TARGETS", "System", "SystemConfig"]
