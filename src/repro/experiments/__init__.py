"""Experiment harnesses: system builder, configs, per-table/figure runners."""

from .chaos import (
    ChaosOutcome,
    default_fault_plans,
    plan_scenarios,
    run_chaos_case,
    run_chaos_matrix,
)
from .config import PAPER_TARGETS, SystemConfig
from .system import System

__all__ = [
    "ChaosOutcome",
    "PAPER_TARGETS",
    "System",
    "SystemConfig",
    "default_fault_plans",
    "plan_scenarios",
    "run_chaos_case",
    "run_chaos_matrix",
]
