"""Experiment harnesses: system builder, configs, per-table/figure runners."""

from .chaos import (
    ChaosOutcome,
    default_fault_plans,
    digest_chaos_outcome,
    plan_scenarios,
    run_chaos_case,
    run_chaos_matrix,
)
from .config import PAPER_TARGETS, SystemConfig
from .runner import (
    Cell,
    CellError,
    canonical_digest,
    cell,
    resolve_jobs,
    run_cells,
    verify_serial_parallel,
)
from .system import System

__all__ = [
    "Cell",
    "CellError",
    "ChaosOutcome",
    "PAPER_TARGETS",
    "System",
    "SystemConfig",
    "canonical_digest",
    "cell",
    "default_fault_plans",
    "digest_chaos_outcome",
    "plan_scenarios",
    "resolve_jobs",
    "run_cells",
    "run_chaos_case",
    "run_chaos_matrix",
    "verify_serial_parallel",
]
