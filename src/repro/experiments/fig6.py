"""Fig. 6: CoreMark-PRO scaling, shared-core vs core-gapped + ablations.

Sweeps the number of physical cores given to the workload.  Fair
accounting (S5.1): shared-core runs N vCPUs on N cores; core-gapped
runs N-1 vCPUs on dedicated cores plus 1 host core.

Four series:

* ``shared``            -- the paper baseline
* ``gapped``            -- async RPC + interrupt delegation (default)
* ``gapped-nodeleg``    -- delegation disabled
* ``gapped-busywait``   -- Quarantine-style yield-polling run calls and
  no delegation: the cyan lines that saturate the single host core
  (S7 attributes Quarantine's ~10-core bottleneck to exactly this)

The paper's shape: near-linear scaling for shared and gapped (gapped
starts one vCPU behind, catches up as host noise costs the shared
baseline ~2% per core), while the busy-waiting ablation collapses once
the host core saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.clock import ms, sec
from .config import SystemConfig
from .workbench import CoremarkRun, run_coremark

__all__ = ["Fig6Result", "run_fig6", "DEFAULT_CORE_COUNTS"]

DEFAULT_CORE_COUNTS = [2, 4, 8, 16, 32, 48, 64]
#: the polling ablation is simulated at high event rates; a shorter run
#: and fewer points keep it tractable without hiding the saturation
BUSYWAIT_CORE_COUNTS = [2, 4, 8, 12, 16, 24]


def _config(mode_label: str, n_cores: int) -> SystemConfig:
    if mode_label == "shared":
        return SystemConfig(mode="shared", n_cores=n_cores)
    if mode_label == "gapped":
        return SystemConfig(mode="gapped", n_cores=n_cores)
    if mode_label == "gapped-nodeleg":
        return SystemConfig(mode="gapped", n_cores=n_cores, delegation=False)
    if mode_label == "gapped-busywait":
        return SystemConfig(
            mode="gapped", n_cores=n_cores, delegation=False, busywait=True
        )
    raise ValueError(mode_label)


@dataclass
class Fig6Result:
    """score per (series, core count)."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    run_to_run_us: Dict[int, float] = field(default_factory=dict)

    def score(self, series: str, n_cores: int) -> Optional[float]:
        for x, y in self.series.get(series, []):
            if x == n_cores:
                return y
        return None


def run_fig6(
    core_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    busywait_duration_ns: int = int(ms(400)),
    include_busywait: bool = True,
    costs: CostModel = DEFAULT_COSTS,
) -> Fig6Result:
    core_counts = core_counts or DEFAULT_CORE_COUNTS
    result = Fig6Result()
    plans = [
        ("shared", core_counts, duration_ns),
        ("gapped", core_counts, duration_ns),
        ("gapped-nodeleg", core_counts, duration_ns),
    ]
    if include_busywait:
        plans.append(
            (
                "gapped-busywait",
                [n for n in BUSYWAIT_CORE_COUNTS if n <= max(core_counts)],
                busywait_duration_ns,
            )
        )
    for label, counts, dur in plans:
        points: List[Tuple[int, float]] = []
        for n_cores in counts:
            run = run_coremark(
                _config(label, n_cores),
                n_cores_used=n_cores,
                duration_ns=dur,
                costs=costs,
            )
            points.append((n_cores, run.score))
            if label == "gapped-nodeleg" and run.run_to_run_ns:
                result.run_to_run_us[n_cores] = (
                    sum(run.run_to_run_ns) / len(run.run_to_run_ns) / 1e3
                )
        result.series[label] = points
    return result
