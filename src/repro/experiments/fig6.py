"""Fig. 6: CoreMark-PRO scaling, shared-core vs core-gapped + ablations.

Sweeps the number of physical cores given to the workload.  Fair
accounting (S5.1): shared-core runs N vCPUs on N cores; core-gapped
runs N-1 vCPUs on dedicated cores plus 1 host core.

Four series:

* ``shared``            -- the paper baseline
* ``gapped``            -- async RPC + interrupt delegation (default)
* ``gapped-nodeleg``    -- delegation disabled
* ``gapped-busywait``   -- Quarantine-style yield-polling run calls and
  no delegation: the cyan lines that saturate the single host core
  (S7 attributes Quarantine's ~10-core bottleneck to exactly this)

The paper's shape: near-linear scaling for shared and gapped (gapped
starts one vCPU behind, catches up as host noise costs the shared
baseline ~2% per core), while the busy-waiting ablation collapses once
the host core saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.clock import ms, sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .workbench import CoremarkRun, run_coremark

__all__ = ["Fig6Result", "run_fig6", "fig6_cells", "DEFAULT_CORE_COUNTS"]

DEFAULT_CORE_COUNTS = [2, 4, 8, 16, 32, 48, 64]
#: the polling ablation is simulated at high event rates; a shorter run
#: and fewer points keep it tractable without hiding the saturation
BUSYWAIT_CORE_COUNTS = [2, 4, 8, 12, 16, 24]


def _config(mode_label: str, n_cores: int) -> SystemConfig:
    if mode_label == "shared":
        return SystemConfig(mode="shared", n_cores=n_cores)
    if mode_label == "gapped":
        return SystemConfig(mode="gapped", n_cores=n_cores)
    if mode_label == "gapped-nodeleg":
        return SystemConfig(mode="gapped", n_cores=n_cores, delegation=False)
    if mode_label == "gapped-busywait":
        return SystemConfig(
            mode="gapped", n_cores=n_cores, delegation=False, busywait=True
        )
    raise ValueError(mode_label)


@dataclass
class Fig6Result:
    """score per (series, core count)."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    run_to_run_us: Dict[int, float] = field(default_factory=dict)

    def score(self, series: str, n_cores: int) -> Optional[float]:
        for x, y in self.series.get(series, []):
            if x == n_cores:
                return y
        return None


def _coremark_cell(
    label: str, n_cores: int, duration_ns: int, costs: CostModel
) -> Tuple[float, List[int]]:
    """One fig-6 data point; pure in (params) -> (score, run-to-run)."""
    run = run_coremark(
        _config(label, n_cores),
        n_cores_used=n_cores,
        duration_ns=duration_ns,
        costs=costs,
    )
    return run.score, list(run.run_to_run_ns)


def fig6_cells(
    core_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    busywait_duration_ns: int = int(ms(400)),
    include_busywait: bool = True,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    """The fig-6 sweep as independent runner cells, in merge order."""
    core_counts = core_counts or DEFAULT_CORE_COUNTS
    plans = [
        ("shared", core_counts, duration_ns),
        ("gapped", core_counts, duration_ns),
        ("gapped-nodeleg", core_counts, duration_ns),
    ]
    if include_busywait:
        plans.append(
            (
                "gapped-busywait",
                [n for n in BUSYWAIT_CORE_COUNTS if n <= max(core_counts)],
                busywait_duration_ns,
            )
        )
    return [
        cell(
            f"fig6/{label}/{n_cores}",
            _coremark_cell,
            label=label,
            n_cores=n_cores,
            duration_ns=dur,
            costs=costs,
        )
        for label, counts, dur in plans
        for n_cores in counts
    ]


def run_fig6(
    core_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    busywait_duration_ns: int = int(ms(400)),
    include_busywait: bool = True,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Fig6Result:
    cells = fig6_cells(
        core_counts, duration_ns, busywait_duration_ns, include_busywait, costs
    )
    outputs = run_cells(cells, jobs=jobs)
    result = Fig6Result()
    for c, (score, run_to_run_ns) in zip(cells, outputs):
        label = c.kwargs["label"]
        n_cores = c.kwargs["n_cores"]
        result.series.setdefault(label, []).append((n_cores, score))
        if label == "gapped-nodeleg" and run_to_run_ns:
            result.run_to_run_us[n_cores] = (
                sum(run_to_run_ns) / len(run_to_run_ns) / 1e3
            )
    return result
