"""Extension: the comparison the paper could not run.

S5.1 explains that without RME hardware the paper had to use a
*non-confidential* shared-core VM as its baseline, which "will
unfortunately exaggerate any performance overheads of core gapping":
a real shared-core **confidential** VM additionally pays world switches,
mitigation flushes, and flush-induced cold state on every exit.  S5.5
predicts core-gapped CVMs will beat shared-core CVMs outright.

Our simulator has no such constraint: the ``shared-cvm`` mode charges
exactly those costs (see :class:`repro.isa.smc.WorldSwitchCosts` and the
flush handling in ``repro.host.kvm``).  This experiment runs CoreMark
across all three configurations to test the paper's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.clock import sec
from .config import SystemConfig
from .workbench import run_coremark

__all__ = ["SharedCvmResult", "run_shared_cvm_comparison"]


@dataclass
class SharedCvmResult:
    """mode -> [(cores, score)]."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def score(self, mode: str, n_cores: int) -> Optional[float]:
        for x, y in self.series.get(mode, []):
            if x == n_cores:
                return y
        return None


def run_shared_cvm_comparison(
    core_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    costs: CostModel = DEFAULT_COSTS,
) -> SharedCvmResult:
    core_counts = core_counts or [4, 8, 16, 32]
    result = SharedCvmResult()
    for mode in ("shared", "shared-cvm", "gapped"):
        points: List[Tuple[int, float]] = []
        for n_cores in core_counts:
            run = run_coremark(
                SystemConfig(mode=mode, n_cores=n_cores),
                n_cores_used=n_cores,
                duration_ns=duration_ns,
                costs=costs,
            )
            points.append((n_cores, run.score))
        result.series[mode] = points
    return result
