"""Extension: the comparison the paper could not run.

S5.1 explains that without RME hardware the paper had to use a
*non-confidential* shared-core VM as its baseline, which "will
unfortunately exaggerate any performance overheads of core gapping":
a real shared-core **confidential** VM additionally pays world switches,
mitigation flushes, and flush-induced cold state on every exit.  S5.5
predicts core-gapped CVMs will beat shared-core CVMs outright.

Our simulator has no such constraint: the ``shared-cvm`` mode charges
exactly those costs (see :class:`repro.isa.smc.WorldSwitchCosts` and the
flush handling in ``repro.host.kvm``).  This experiment runs CoreMark
across all three configurations to test the paper's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.clock import sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .workbench import run_coremark

__all__ = ["SharedCvmResult", "run_shared_cvm_comparison", "shared_cvm_cells"]


@dataclass
class SharedCvmResult:
    """mode -> [(cores, score)]."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def score(self, mode: str, n_cores: int) -> Optional[float]:
        for x, y in self.series.get(mode, []):
            if x == n_cores:
                return y
        return None


def _coremark_cell(
    mode: str, n_cores: int, duration_ns: int, costs: CostModel
) -> float:
    run = run_coremark(
        SystemConfig(mode=mode, n_cores=n_cores),
        n_cores_used=n_cores,
        duration_ns=duration_ns,
        costs=costs,
    )
    return run.score


def shared_cvm_cells(
    core_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    core_counts = core_counts or [4, 8, 16, 32]
    return [
        cell(
            f"ext_shared_cvm/{mode}/{n_cores}",
            _coremark_cell,
            mode=mode,
            n_cores=n_cores,
            duration_ns=duration_ns,
            costs=costs,
        )
        for mode in ("shared", "shared-cvm", "gapped")
        for n_cores in core_counts
    ]


def run_shared_cvm_comparison(
    core_counts: Optional[List[int]] = None,
    duration_ns: int = sec(1),
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> SharedCvmResult:
    cells = shared_cvm_cells(core_counts, duration_ns, costs)
    outputs = run_cells(cells, jobs=jobs)
    result = SharedCvmResult()
    for c, score in zip(cells, outputs):
        result.series.setdefault(c.kwargs["mode"], []).append(
            (c.kwargs["n_cores"], score)
        )
    return result
