"""Cell-based sweep executor: serial by default, process-parallel on request.

Every paper artifact (figs. 6-10, table 5, the chaos matrix) is a sweep
of fully independent simulation *cells* — one ``(config, params, seed)``
triple per data point.  This module gives those sweeps a single
execution engine:

* a :class:`Cell` names a pure top-level function by ``"module:qualname"``
  string (so it pickles as data, and workers import-once / run-many)
  plus the keyword arguments for one data point;
* :func:`run_cells` executes a list of cells either inline (``jobs=1``,
  the default — the exact same code path the serial harnesses always
  had) or fanned out over a spawn-context :class:`ProcessPoolExecutor`,
  and always returns results **in cell order**, regardless of the order
  workers finish in;
* a failing cell raises :class:`CellError` naming the cell — the pool
  is torn down, remaining cells are cancelled, and the caller never
  hangs on a crashed worker.

Parallelism is safe *because* every cell builds its own
:class:`~repro.sim.engine.Simulator` from an explicit seed: DESIGN.md
invariant #6 (same seed ⇒ bit-identical traces) means a worker process
produces exactly the bytes the serial loop would have.  That claim is
not an assumption — :func:`verify_serial_parallel` re-runs a sweep both
ways and diffs canonical digests, and ``tests/experiments/test_runner.py``
asserts digest equality through the ``repro.lint.sanitizer`` machinery.

Opt in per call (``jobs=4``), per process (``REPRO_JOBS=4``), or from
the command line::

    PYTHONPATH=src python -m repro.experiments.runner fig6 --jobs 4
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import importlib
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..obs.profile import PROFILE_ENV_VAR, profiler_from_env, render_profile

__all__ = [
    "Cell",
    "CellError",
    "cell",
    "resolve_jobs",
    "run_cells",
    "canonical_digest",
    "verify_serial_parallel",
    "main",
]


# --------------------------------------------------------------------------
# cells


@dataclass(frozen=True)
class Cell:
    """One sweep data point: a pure function reference plus its kwargs.

    ``fn`` is a ``"module:qualname"`` string, not a callable: cells must
    survive pickling into a worker process, and a string reference keeps
    the payload tiny while forcing the target to be importable (no
    lambdas, no closures, nothing defined under ``__main__``).
    """

    cell_id: str
    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


class CellError(RuntimeError):
    """A cell failed; carries the cell id so sweeps fail loudly and named."""

    def __init__(self, cell_id: str, message: str):
        super().__init__(f"cell {cell_id!r} failed: {message}")
        self.cell_id = cell_id
        self.message = message

    def __reduce__(self):  # plain two-arg ctor: picklable across the pool
        return (CellError, (self.cell_id, self.message))


def cell(cell_id: str, fn: Any, **kwargs: Any) -> Cell:
    """Build a :class:`Cell`, deriving the spec string from a callable.

    Rejects functions that cannot be re-imported by name in a worker:
    anything defined under ``__main__`` or nested inside another
    function (``<locals>`` in its qualname).
    """
    if isinstance(fn, str):
        spec = fn
    else:
        module = getattr(fn, "__module__", None)
        qualname = getattr(fn, "__qualname__", "")
        if not module or module == "__main__" or "<locals>" in qualname:
            raise ValueError(
                f"cell {cell_id!r}: {fn!r} is not importable by name "
                "(top-level module functions only)"
            )
        spec = f"{module}:{qualname}"
    _split_spec(spec)  # validate shape eagerly, before any pool spins up
    return Cell(cell_id, spec, kwargs)


def _split_spec(spec: str) -> tuple:
    module_name, sep, qualname = spec.partition(":")
    if not sep or not module_name or not qualname:
        raise ValueError(f"cell fn spec {spec!r} is not 'module:qualname'")
    if module_name == "__main__":
        raise ValueError(f"cell fn spec {spec!r}: __main__ is not importable")
    return module_name, qualname


@lru_cache(maxsize=None)
def _resolve(spec: str) -> Callable[..., Any]:
    """Import the cell function once per process (import-once, run-many)."""
    module_name, qualname = _split_spec(spec)
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"cell fn spec {spec!r} resolved to non-callable {target!r}")
    return target


def _execute_cell(cell: Cell) -> Any:
    """Run one cell; the single code path shared by serial and workers."""
    try:
        fn = _resolve(cell.fn)
        return fn(**cell.kwargs)
    except CellError:
        raise
    except Exception as exc:
        raise CellError(cell.cell_id, f"{type(exc).__name__}: {exc}") from exc


# --------------------------------------------------------------------------
# execution


def resolve_jobs(
    jobs: Optional[Any] = None, n_cells: Optional[int] = None
) -> int:
    """Explicit ``jobs`` wins; else ``REPRO_JOBS``; else 1 (serial).

    ``"auto"`` (either source) sizes the pool from the host: one worker
    per CPU, capped at ``n_cells`` (no idle workers), and *serial* on a
    single-CPU host — there a spawn pool only adds interpreter start-up
    and pickling on top of the same core, so inline execution is the
    faster and the simpler path.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        jobs = raw
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            cpus = os.cpu_count() or 1
            if cpus <= 1:
                return 1
            return min(cpus, n_cells) if n_cells else cpus
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs={jobs!r} is not an integer or 'auto'"
            ) from None
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _worker_init(parent_path: List[str]) -> None:
    """Mirror the parent's ``sys.path`` so cell modules resolve in spawn
    children (test modules, for one, live outside any installed package)."""
    for entry in parent_path:
        if entry not in sys.path:
            sys.path.append(entry)


def run_cells(
    cells: Iterable[Cell],
    jobs: Optional[Any] = None,
    mp_context: Optional[str] = None,
) -> List[Any]:
    """Execute ``cells`` and return their results in cell order.

    ``jobs=1`` (the default, also via ``REPRO_JOBS``) runs inline — no
    pool, no pickling, digests and CI behave exactly as before.  With
    ``jobs>1`` cells fan out over a spawn-context process pool; results
    are still collected in submission order, so the merged output is
    independent of completion order.  The first failing cell aborts the
    sweep with a :class:`CellError` naming it.
    """
    cells = list(cells)
    seen = set()
    for c in cells:
        if c.cell_id in seen:
            raise ValueError(f"duplicate cell_id {c.cell_id!r}")
        seen.add(c.cell_id)

    jobs = resolve_jobs(jobs, n_cells=len(cells))
    if jobs == 1 or len(cells) <= 1:
        return [_execute_cell(c) for c in cells]

    import multiprocessing

    ctx = multiprocessing.get_context(mp_context or "spawn")
    results: List[Any] = []
    failure: Optional[CellError] = None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(cells)),
        mp_context=ctx,
        initializer=_worker_init,
        initargs=(list(sys.path),),
    ) as pool:
        futures = [pool.submit(_execute_cell, c) for c in cells]
        # collect strictly in submission order: merge order == cell order
        for c, fut in zip(cells, futures):
            if failure is not None:
                fut.cancel()
                continue
            try:
                results.append(fut.result())
            except CellError as exc:
                failure = exc
            except Exception as exc:  # BrokenProcessPool, unpicklable, ...
                failure = CellError(
                    c.cell_id, f"worker failed: {type(exc).__name__}: {exc}"
                )
                failure.__cause__ = exc
    if failure is not None:
        raise failure
    return results


# --------------------------------------------------------------------------
# digests: proving parallel == serial


def _canonical(obj: Any) -> Any:
    """A JSON-serialisable, order-stable projection of a cell result."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return {"__dict__": [[_canonical(k), _canonical(v)] for k, v in items]}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(map(repr, obj))}
    if isinstance(obj, float):
        return {"__float__": obj.hex()}  # bit-exact, not printf-rounded
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return {"__repr__": repr(obj)}


def canonical_digest(result: Any) -> str:
    """SHA-256 over the canonical projection of one cell result."""
    payload = json.dumps(_canonical(result), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def verify_serial_parallel(
    cells: Sequence[Cell], jobs: int = 2
) -> List[str]:
    """Run ``cells`` serially and with ``jobs`` workers; return divergences.

    An empty list means every cell's parallel result is bit-identical
    (by canonical digest) to its serial result.  This is the cheap
    structural check; the sanitizer-grade trace-digest equality lives in
    ``tests/experiments/test_runner.py`` via ``repro.lint.sanitizer``.
    """
    serial = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=jobs)
    divergences: List[str] = []
    for c, a, b in zip(cells, serial, parallel):
        da, db = canonical_digest(a), canonical_digest(b)
        if da != db:
            divergences.append(
                f"cell {c.cell_id!r}: serial {da[:16]} != parallel {db[:16]}"
            )
    return divergences


# --------------------------------------------------------------------------
# CLI


def _sweep_registry() -> Dict[str, Callable[[Optional[int]], Any]]:
    """Name -> runner; harness imports are lazy so the CLI stays light."""

    def fig6(jobs: Optional[int]) -> Any:
        from . import fig6 as mod

        return mod.run_fig6(jobs=jobs)

    def fig7(jobs: Optional[int]) -> Any:
        from . import fig7 as mod

        return mod.run_fig7(jobs=jobs)

    def fig8(jobs: Optional[int]) -> Any:
        from . import fig8 as mod

        return mod.run_fig8(jobs=jobs)

    def fig9(jobs: Optional[int]) -> Any:
        from . import fig9 as mod

        return mod.run_fig9(jobs=jobs)

    def fig10(jobs: Optional[int]) -> Any:
        from . import fig10 as mod

        return mod.run_fig10(jobs=jobs)

    def table5(jobs: Optional[int]) -> Any:
        from . import table5 as mod

        return mod.run_table5(jobs=jobs)

    def ext_shared_cvm(jobs: Optional[int]) -> Any:
        from . import ext_shared_cvm as mod

        return mod.run_shared_cvm_comparison(jobs=jobs)

    def defenses(jobs: Optional[int]) -> Any:
        from . import defenses as mod

        return mod.run_defenses(jobs=jobs)

    def chaos(jobs: Optional[int]) -> Any:
        from . import chaos as mod

        return mod.run_chaos_matrix(jobs=jobs)

    def fleet(jobs: Optional[int]) -> Any:
        from ..fleet import sweep as mod

        return mod.run_fleet(jobs=jobs)

    def elastic(jobs: Optional[int]) -> Any:
        from ..fleet import elastic as mod

        return mod.run_elastic_sweep(jobs=jobs)

    return {
        "fig6": fig6,
        "fig7": fig7,
        "fig8": fig8,
        "fig9": fig9,
        "fig10": fig10,
        "table5": table5,
        "ext_shared_cvm": ext_shared_cvm,
        "chaos": chaos,
        "fleet": fleet,
        "elastic": elastic,
        "defenses": defenses,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    sweeps = _sweep_registry()
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run one experiment sweep, optionally across worker processes.",
    )
    parser.add_argument("sweep", choices=sorted(sweeps))
    parser.add_argument(
        "--jobs",
        "-j",
        default=None,
        help="worker processes, or 'auto' to size from the host "
        "(default: REPRO_JOBS env, else serial)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile engine dispatch (forces serial; wall-clock only, "
        "simulated results are unaffected)",
    )
    args = parser.parse_args(argv)
    if args.profile:
        # the profiler aggregates in-process, so fan-out would lose it
        os.environ[PROFILE_ENV_VAR] = "1"
        args.jobs = 1
    result = sweeps[args.sweep](args.jobs)
    print(f"{args.sweep}: digest {canonical_digest(result)}")
    if args.profile:
        profiler = profiler_from_env()
        if profiler is not None and profiler.events:
            print(render_profile(profiler))
    return 0


if __name__ == "__main__":
    sys.exit(main())
