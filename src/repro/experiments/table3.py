"""Table 3: virtual inter-processor interrupt latency.

Two vCPUs of one VM ping IPIs; we time from the sender's ICC_SGI1R
write to the receiver's acknowledgement in shared memory:

* core-gapped **without** delegation: the IPI exits to the host, KVM
  emulates the vGIC write, kicks the target's dedicated core out of the
  guest, and re-enters it with the interrupt -- two full remote exits;
* core-gapped **with** delegation: the sender's RMM emulates the write
  and injects into the sibling REC directly (one SGI between dedicated
  cores, no host);
* shared-core: KVM's usual in-kernel vGIC path.

Paper: 43.9 us / 2.22 us / 3.85 us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from ..analysis.stats import Summary, summarize
from ..costs import CostModel, DEFAULT_COSTS
from ..guest.actions import Compute, SendIpi
from ..guest.vm import GuestVm
from ..sim.clock import ms, us
from .config import SystemConfig
from .system import System

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    latency_us: Dict[str, Summary]

    def rows(self):
        order = [
            ("Core-gapped CVM, without delegation", "gapped-nodeleg"),
            ("Core-gapped CVM, with delegation", "gapped-deleg"),
            ("Shared-core VM", "shared"),
        ]
        return [
            (label, self.latency_us[key].mean)
            for label, key in order
            if key in self.latency_us
        ]


def _pinger(gap_ns: int, count: int) -> Generator:
    for _ in range(count):
        yield SendIpi(1)
        yield Compute(gap_ns)
    while True:
        yield Compute(1_000_000)


def _receiver() -> Generator:
    while True:
        yield Compute(200_000)


def _ipi_factory(gap_ns: int, count: int):
    def factory(vm: GuestVm, index: int):
        if index == 0:
            return _pinger(gap_ns, count)
        return _receiver()

    return factory


def _measure(config: SystemConfig, count: int, costs: CostModel) -> Summary:
    system = System(config, costs)
    vm = GuestVm(
        "ipi", 2, _ipi_factory(us(200), count), costs=costs
    )
    kvm = system.launch(vm)
    system.start(kvm)
    system.run_until(
        lambda: len(system.tracer.samples("vipi_latency_ns")) >= count,
        limit_ns=int(count * ms(1) + ms(500)),
    )
    samples_us = [
        sample / 1e3 for sample in system.tracer.samples("vipi_latency_ns")
    ]
    return summarize(samples_us)


def run_table3(count: int = 200, costs: CostModel = DEFAULT_COSTS) -> Table3Result:
    results: Dict[str, Summary] = {}
    results["gapped-nodeleg"] = _measure(
        SystemConfig(mode="gapped", n_cores=4, delegation=False,
                     housekeeping=None),
        count, costs,
    )
    results["gapped-deleg"] = _measure(
        SystemConfig(mode="gapped", n_cores=4, delegation=True,
                     housekeeping=None),
        count, costs,
    )
    results["shared"] = _measure(
        SystemConfig(mode="shared", n_cores=4, housekeeping=None),
        count, costs,
    )
    return Table3Result(latency_us=results)
