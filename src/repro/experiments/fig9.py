"""Fig. 9: IOzone sync read/write throughput to a virtio block device.

O_DIRECT single-threaded records from 4 KiB to 64 MiB.  Every record is
a synchronous virtio request: a doorbell exit, host-side emulation, an
NVMe-class device access, and a completion interrupt.  For small
records the core-gapped CVM pays its higher exit latency on every
record; past ~10 MiB the device transfer time dominates and the two
configurations converge -- the paper's crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..guest.workloads.iozone import (
    DEFAULT_RECORDS,
    IozoneStats,
    iozone_workload_factory,
)
from ..sim.clock import sec
from .config import SystemConfig
from .runner import Cell, cell, run_cells
from .system import System

__all__ = ["Fig9Result", "run_fig9", "fig9_cells"]


@dataclass
class Fig9Result:
    stats: Dict[str, IozoneStats] = field(default_factory=dict)
    records: List[int] = field(default_factory=list)

    def throughput(self, mode: str, record: int, op: str) -> float:
        return self.stats[mode].throughput_mib_s(record, op)


def _run_one(
    mode: str, records: List[int], ops: int, costs: CostModel
) -> IozoneStats:
    n_cores = 4
    config = SystemConfig(mode=mode, n_cores=n_cores)
    system = System(config, costs)
    stats = IozoneStats()
    n_vcpus = n_cores - 1 if config.is_gapped else n_cores
    vm = GuestVm(
        "iozone",
        n_vcpus,
        iozone_workload_factory(
            stats,
            "virtio-blk0",
            clock=lambda: system.sim.now,
            records=records,
            ops_per_record=ops,
            costs=costs,
        ),
        costs=costs,
    )
    kvm = system.launch(vm)
    system.add_virtio_blk(kvm, "virtio-blk0")
    system.start(kvm)
    expected = len(records) * 2 * ops
    system.run_until(
        lambda: sum(len(v) for v in stats.samples.values()) >= expected,
        limit_ns=sec(120),
    )
    return stats


def fig9_cells(
    records: Optional[List[int]] = None,
    ops_per_record: int = 8,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    records = list(records or DEFAULT_RECORDS)
    return [
        cell(
            f"fig9/{mode}",
            _run_one,
            mode=mode,
            records=records,
            ops=ops_per_record,
            costs=costs,
        )
        for mode in ("shared", "gapped")
    ]


def run_fig9(
    records: Optional[List[int]] = None,
    ops_per_record: int = 8,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Fig9Result:
    cells = fig9_cells(records, ops_per_record, costs)
    outputs = run_cells(cells, jobs=jobs)
    result = Fig9Result(records=list(records or DEFAULT_RECORDS))
    for c, stats in zip(cells, outputs):
        result.stats[c.kwargs["mode"]] = stats
    return result
