"""The fault injector: wiring a :class:`FaultPlan` into a live system.

Every fault site in the simulator is an optional hook that defaults to
``None`` (zero behavioural change when no injector is attached).  The
injector installs closures on those hooks and makes all probabilistic
decisions through per-spec :mod:`repro.sim.rng` streams, keyed by the
spec's index within the plan -- so adding a spec never perturbs the
draws of existing ones, and (plan, seed) replays bit-identically.

Fault sites (and the hook each attach method installs):

==================  ====================================================
``attach_gic``      ``Gic.sgi_fault_hook`` -- drop / delay / duplicate
                    SGIs on the wire
``attach_port``     ``AsyncRpcPort.completion_fault`` -- stall or
                    corrupt the exit record's publication
``attach_notifier`` ``ExitNotifier.stall_hook`` -- stall the wake-up
                    thread before its slot scan
``attach_kernel``   ``HostKernel.fault_hooks["hotplug"]`` -- abort a
                    hotplug transition mid-way
``attach_device``   ``VirtioBackend.completion_fault_hook`` -- delay a
                    virtio completion
``attach_engine``   ``DedicatedCore.fail_after_runs`` -- hard-stall a
                    dedicated core after N run calls
==================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..rmm.rmi import RmiResult, RmiStatus
from ..sim.rng import RngFactory
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultPlan` against a running system."""

    def __init__(self, plan: FaultPlan, rng: RngFactory, sim, tracer=None):
        self.plan = plan
        self.sim = sim
        self.tracer = tracer
        #: total injections by fault kind (observability + test asserts)
        self.injected: Dict[str, int] = {}
        self._counts: Dict[int, int] = {}
        self._streams = {
            index: rng.stream(f"fault:{plan.name}:{index}:{spec.kind}")
            for index, spec in enumerate(plan.specs)
        }
        self._gic = None
        #: undo closures, one per installed hook, so :meth:`detach_all`
        #: can model "the faulty machine was replaced" after a restore
        self._attached: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # decision machinery
    # ------------------------------------------------------------------

    def _fires(self, index: int, spec: FaultSpec) -> bool:
        if not spec.active_at(self.sim.now):
            return False
        if spec.count is not None and self._counts.get(index, 0) >= spec.count:
            return False
        if spec.rate < 1.0 and self._streams[index].random() >= spec.rate:
            return False
        return True

    def _record(self, index: int, spec: FaultSpec) -> None:
        self._counts[index] = self._counts.get(index, 0) + 1
        self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
        if self.tracer is not None:
            self.tracer.count(f"fault:{spec.kind}")
            self.tracer.set_gauge("faults_injected_count", self.total_injected)
            if self.tracer.enabled:
                self.tracer.event(
                    self.sim.now, "fault.inject", detail=spec.kind
                )

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # attach points
    # ------------------------------------------------------------------

    def attach_gic(self, gic) -> None:
        self._gic = gic
        gic.sgi_fault_hook = self._sgi_hook
        self._attached.append(lambda: setattr(gic, "sgi_fault_hook", None))

    def _sgi_hook(self, target_core: int, intid: int) -> Optional[List[int]]:
        for index, spec in self.plan.of_kind(
            FaultKind.IPI_DROP, FaultKind.IPI_DELAY, FaultKind.IPI_DUPLICATE
        ):
            if spec.intids is not None and intid not in spec.intids:
                continue
            if spec.target is not None and target_core != spec.target:
                continue
            if not self._fires(index, spec):
                continue
            self._record(index, spec)
            wire = self._gic.wire_delay_ns
            if spec.kind == FaultKind.IPI_DROP:
                return []
            if spec.kind == FaultKind.IPI_DELAY:
                return [wire + spec.delay_ns]
            return [wire, wire + max(spec.delay_ns, 1)]
        return None

    def attach_port(self, port) -> None:
        port.completion_fault = self._completion_hook
        self._attached.append(lambda: setattr(port, "completion_fault", None))

    def _completion_hook(self, port, result) -> Tuple[int, object]:
        for index, spec in self.plan.of_kind(
            FaultKind.RPC_COMPLETION_STALL, FaultKind.RPC_COMPLETION_CORRUPT
        ):
            if spec.port_substr is not None and spec.port_substr not in port.name:
                continue
            if not self._fires(index, spec):
                continue
            self._record(index, spec)
            if spec.kind == FaultKind.RPC_COMPLETION_STALL:
                return (spec.delay_ns, result)
            # a corrupted slot surfaces through the host's existing
            # run-error path (invariant #2: host-visible, never
            # guest-visible)
            return (
                0,
                RmiResult(
                    RmiStatus.ERROR_INPUT,
                    f"corrupted completion slot on {port.name} "
                    f"(fault injection)",
                ),
            )
        return (0, result)

    def attach_notifier(self, notifier) -> None:
        notifier.stall_hook = self._wakeup_stall_hook
        self._attached.append(lambda: setattr(notifier, "stall_hook", None))

    def _wakeup_stall_hook(self) -> int:
        total = 0
        for index, spec in self.plan.of_kind(FaultKind.WAKEUP_STALL):
            if self._fires(index, spec):
                self._record(index, spec)
                total += spec.delay_ns
        return total

    def attach_kernel(self, kernel) -> None:
        kernel.fault_hooks["hotplug"] = self._hotplug_hook
        self._attached.append(
            lambda: kernel.fault_hooks.pop("hotplug", None)
        )

    def _hotplug_hook(self, direction: str, core_index: int) -> bool:
        for index, spec in self.plan.of_kind(FaultKind.HOTPLUG_ABORT):
            if spec.target is not None and core_index != spec.target:
                continue
            if not self._fires(index, spec):
                continue
            self._record(index, spec)
            return True
        return False

    def attach_device(self, backend) -> None:
        backend.completion_fault_hook = self._virtio_hook
        self._attached.append(
            lambda: setattr(backend, "completion_fault_hook", None)
        )

    def _virtio_hook(self, kind: str, vcpu_idx: int, request) -> int:
        total = 0
        for index, spec in self.plan.of_kind(FaultKind.VIRTIO_COMPLETION_DELAY):
            if spec.target is not None and vcpu_idx != spec.target:
                continue
            if self._fires(index, spec):
                self._record(index, spec)
                total += spec.delay_ns
        return total

    def attach_machine(self, machine) -> None:
        """Force per-chunk compute while this injector is armed.

        Faults must land between chunks at the exact instants the
        uncoalesced schedule would produce, so an armed injector
        inhibits compute-span coalescing machine-wide; ``detach_all``
        lifts the inhibit along with the hooks.
        """
        machine.coalesce_inhibit += 1
        self._attached.append(
            lambda: setattr(
                machine, "coalesce_inhibit", machine.coalesce_inhibit - 1
            )
        )

    def attach_engine(self, engine) -> None:
        """Arm dedicated-core stalls.  Call *after* cores are dedicated
        (e.g. after ``System.launch``): the stall is armed on the spec's
        target core, or the lowest dedicated core when unscoped."""
        for index, spec in self.plan.of_kind(FaultKind.CORE_STALL):
            cores = sorted(engine.dedicated)
            if not cores:
                continue
            target = spec.target if spec.target in engine.dedicated else cores[0]
            core = engine.dedicated[target]
            core.fail_after_runs = (
                spec.after_runs if spec.after_runs is not None else 0
            )
            self._attached.append(
                lambda core=core: setattr(core, "fail_after_runs", None)
            )
            self._record(index, spec)

    # ------------------------------------------------------------------

    def detach_all(self) -> None:
        """Uninstall every hook and disarm pending core stalls.

        The recovery supervisor calls this after replaying a restored
        server to its checkpoint: the restored run is the same machine
        with the faulty part replaced, so already-injected faults stay
        in history but no new ones fire.  Idempotent.
        """
        for undo in self._attached:
            undo()
        self._attached.clear()
