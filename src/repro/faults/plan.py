"""Declarative fault plans: what goes wrong, where, when, how often.

A :class:`FaultPlan` is an immutable recipe of :class:`FaultSpec`
entries.  It carries no randomness of its own: every probabilistic
decision is made by the :class:`~repro.faults.injector.FaultInjector`
drawing from named :class:`~repro.sim.rng.RngFactory` streams, so the
same (plan, seed) pair replays the exact same fault sequence
(DESIGN.md invariant #6 holds *under* fault injection, not just
without it).

The taxonomy follows the transports the paper's design leans on
(S4.2-S4.4): IPIs at the GIC, async completion slots, the wake-up
thread, hotplug transitions, dedicated cores, and virtio completions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import SimulationError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind:
    """The fault taxonomy (see DESIGN.md "Fault model & hardening")."""

    #: an SGI vanishes on the wire (lost exit IPI / lost host kick)
    IPI_DROP = "ipi_drop"
    #: an SGI arrives late by ``delay_ns``
    IPI_DELAY = "ipi_delay"
    #: an SGI is delivered twice (spurious duplicate)
    IPI_DUPLICATE = "ipi_duplicate"
    #: the exit record's publication is stalled by ``delay_ns``
    RPC_COMPLETION_STALL = "rpc_completion_stall"
    #: the completion slot is corrupted (host reads garbage)
    RPC_COMPLETION_CORRUPT = "rpc_completion_corrupt"
    #: the wake-up thread burns ``delay_ns`` before scanning
    WAKEUP_STALL = "wakeup_stall"
    #: one virtio device completion is delayed by ``delay_ns``
    VIRTIO_COMPLETION_DELAY = "virtio_completion_delay"
    #: a hotplug transition aborts mid-way
    HOTPLUG_ABORT = "hotplug_abort"
    #: a dedicated core hard-stalls after ``after_runs`` run calls
    CORE_STALL = "core_stall"

    ALL = frozenset(
        {
            IPI_DROP,
            IPI_DELAY,
            IPI_DUPLICATE,
            RPC_COMPLETION_STALL,
            RPC_COMPLETION_CORRUPT,
            WAKEUP_STALL,
            VIRTIO_COMPLETION_DELAY,
            HOTPLUG_ABORT,
            CORE_STALL,
        }
    )


@dataclass(frozen=True)
class FaultSpec:
    """One fault source within a plan.

    ``rate`` is the per-opportunity injection probability (1.0 =
    always, drawn from a dedicated rng stream otherwise); ``count``
    caps total injections; ``start_ns``/``end_ns`` bound the active
    window in simulated time.  The remaining fields scope the fault to
    its site: ``target`` a physical core index, ``intids`` an SGI
    filter, ``port_substr`` a completion-port name filter,
    ``after_runs`` the run-call count a stalling core survives.
    """

    kind: str
    rate: float = 1.0
    count: Optional[int] = None
    delay_ns: int = 0
    start_ns: int = 0
    end_ns: Optional[int] = None
    target: Optional[int] = None
    intids: Optional[Tuple[int, ...]] = None
    port_substr: Optional[str] = None
    after_runs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise SimulationError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError(f"fault rate {self.rate} not in [0, 1]")
        if self.delay_ns < 0:
            raise SimulationError(f"negative fault delay {self.delay_ns}")

    def active_at(self, now_ns: int) -> bool:
        if now_ns < self.start_ns:
            return False
        return self.end_ns is None or now_ns < self.end_ns


@dataclass(frozen=True)
class FaultPlan:
    """A named, immutable set of fault specs."""

    name: str
    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, name: str, *specs: FaultSpec) -> "FaultPlan":
        return cls(name=name, specs=tuple(specs))

    def of_kind(self, *kinds: str) -> List[Tuple[int, FaultSpec]]:
        """(index, spec) pairs matching any of ``kinds``; the index is
        stable and keys the injector's per-spec rng stream/counter."""
        wanted = set(kinds)
        return [
            (index, spec)
            for index, spec in enumerate(self.specs)
            if spec.kind in wanted
        ]

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.kind for spec in self.specs}))
