"""Seeded fault injection for the core-gapping stack.

The paper's design moves every host/guest interaction onto explicit
asynchronous transports -- IPIs, completion slots, a wake-up thread,
hotplug transitions.  Each transport is a place where real hardware
and real kernels fail.  This package injects those failures
deterministically (every probabilistic choice via
:class:`~repro.sim.rng.RngFactory` streams) so the hardening paths --
watchdogs, bounded retries, sync timeouts, planner degradation -- can
be exercised and audited under the exact same invariants as the happy
path.  See DESIGN.md "Fault model & hardening".
"""

from .injector import FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "FaultKind", "FaultPlan", "FaultSpec"]
