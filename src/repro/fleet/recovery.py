"""The fleet recovery supervisor: checkpoint during traffic, restore on
failure, keep the books straight across the boundary.

A server under a :class:`~repro.faults.FaultPlan` can die mid-serving
(a dedicated core stalls and retries exhaust, the engine deadlocks).
The supervisor drives serving in checkpoint-period chunks, taking a
:func:`repro.snap.snapshot` after each clean chunk.  When a chunk ends
in failure it restores the last checkpoint -- rebuilding the server
from its spec and seed and replaying to the checkpoint instant, which
the snapshot verifies bit-identically -- then *detaches the fault
plan* (the faulty machine was replaced) and resumes serving from the
checkpoint.

The restore boundary is where recovery accounting usually goes wrong,
so the supervisor pins three invariants:

* **conservation** -- offered == completed + dropped per tenant, with
  the replayed window counted exactly once (the rollback discards the
  failed timeline entirely; requests in it are re-issued by the same
  arrival draws on replay);
* **SLO honesty** -- completions that land inside a recovery window
  (checkpoint to failure, plus the modelled restore penalty) are
  charged against tenant SLOs via
  ``fleet_recovery_slo_violation_count``; downtime itself is published
  as ``fleet_recovery_downtime_ns``;
* **audit cleanliness** -- :func:`audit_server` re-runs the core-gap
  and conservation audits on the final (possibly restored) timeline,
  so a restore can never launder an isolation violation.

All recovery metrics are gauges: a supervised fault-free run stays
digest-identical to :func:`~repro.fleet.scenario.run_server`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..faults import FaultInjector, FaultPlan
from ..security import CoreGapAuditor, audit_conservation
from ..sim.clock import ms, us
from ..sim.engine import SimulationError
from ..sim.timeout import RetryPolicy
from ..snap import Recipe, Snapshot, snapshot, restore
from .placement import Placement
from .scenario import (
    BootedServer,
    TenantResult,
    boot_server,
    drain_and_finish,
    tenant_results,
)
from .spec import ScenarioSpec

__all__ = [
    "RecoveryPolicy",
    "RecoveryError",
    "RestoreEvent",
    "RecoveryReport",
    "build_recoverable_server",
    "run_server_with_recovery",
    "audit_server",
]


class RecoveryError(SimulationError):
    """The supervisor could not bring the server back within policy."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the supervisor checkpoints and restores one server."""

    #: simulated time between checkpoints while serving
    checkpoint_period_ns: int
    #: modelled wall-time cost of a restore (counts as downtime)
    restore_penalty_ns: int = 0
    #: restores allowed before the server is declared unrecoverable
    max_restores: int = 3
    #: verify each restore bit-identically against its checkpoint
    verify_restore: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_period_ns <= 0:
            raise SimulationError(
                f"non-positive checkpoint period: {self.checkpoint_period_ns}"
            )
        if self.restore_penalty_ns < 0:
            raise SimulationError(
                f"negative restore penalty: {self.restore_penalty_ns}"
            )
        if self.max_restores < 0:
            raise SimulationError(f"negative max_restores: {self.max_restores}")


@dataclass(frozen=True)
class RestoreEvent:
    """One failure-and-restore of a supervised server."""

    failed_at_ns: int
    checkpoint_ns: int
    reason: str
    #: simulated progress discarded by the rollback
    lost_ns: int
    #: lost progress plus the policy's restore penalty
    downtime_ns: int


@dataclass
class RecoveryReport:
    """Outcome of one supervised serving run."""

    tenants: List[TenantResult] = field(default_factory=list)
    restores: List[RestoreEvent] = field(default_factory=list)
    checkpoints: int = 0
    recovery_slo_violations: int = 0
    audit_problems: List[str] = field(default_factory=list)
    #: the final (possibly restored) server, for inspection; not
    #: picklable once finished (live generators)
    server: Optional[BootedServer] = field(
        default=None, repr=False, compare=False
    )

    @property
    def downtime_ns(self) -> int:
        return sum(event.downtime_ns for event in self.restores)

    @property
    def recovered(self) -> bool:
        return not self.audit_problems


def build_recoverable_server(
    spec: ScenarioSpec,
    placement: Placement,
    server_index: int,
    plan: Optional[FaultPlan] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> Tuple[BootedServer, Optional[FaultInjector]]:
    """Boot one server, wire the fault plan + hardening, start traffic.

    This is the supervisor's *recipe body*: called with the same
    arguments it reproduces the same booted state bit-for-bit, which is
    what makes checkpoint-by-re-execution restores verifiable.  With no
    plan (or an empty one) the boot is exactly
    :func:`~repro.fleet.scenario.boot_server` plus ``client.start`` --
    no hardening, no injector -- so a supervised fault-free run stays
    digest-identical to the plain path.
    """
    server = boot_server(spec, placement, server_index, costs)
    system = server.system
    injector: Optional[FaultInjector] = None
    if plan is not None and plan.specs:
        injector = FaultInjector(
            plan, system.machine.rng.fork("faults"), system.sim, system.tracer
        )
        injector.attach_gic(system.machine.gic)
        injector.attach_kernel(system.kernel)
        injector.attach_notifier(system.notifier)
        injector.attach_machine(system.machine)
        for kvm in system.kvms:
            for port in kvm.ports.values():
                injector.attach_port(port)
            kvm.run_wait_retry = RetryPolicy(
                ms(1),
                max_retries=6,
                jitter=0.1,
                rng=system.machine.rng.stream("retry:kvm-run"),
            )
        injector.attach_engine(system.engine)
        for booted in server.vms:
            for device in booted.devices.values():
                if hasattr(device, "completion_fault_hook"):
                    injector.attach_device(device)
        # hardening on, as in the chaos harness: faults must surface as
        # bounded host-side errors the supervisor can see, never hangs
        system.notifier.watchdog_ns = us(200)
        system.planner.sync_timeout_ns = ms(2)
    for client in server.clients:
        client.start(spec.duration_ns)
    return server, injector


def _failure_reason(server: BootedServer) -> Optional[str]:
    """Why this server counts as failed, or None while healthy."""
    system = server.system
    for index, core in sorted(system.engine.dedicated.items()):
        if core.failed:
            return f"dead dedicated core {index}"
    for kvm in system.kvms:
        if kvm.run_errors:
            return (
                f"{kvm.vm.name}: {len(kvm.run_errors)} run error(s): "
                f"{kvm.run_errors[-1].value}"
            )
    return None


def _extra_state(
    server: BootedServer, injector: Optional[FaultInjector]
) -> Dict[str, Any]:
    """Fleet-owned state the System capture cannot reach."""
    return {"clients": server.clients, "injector": injector}


def audit_server(server: BootedServer) -> List[str]:
    """Core-gap + conservation audit of a (finished) server."""
    system = server.system
    report = CoreGapAuditor().audit(system.machine, system.tracer)
    problems = [f"core-gap: {v}" for v in report.sharing]
    problems += [f"residency: {v}" for v in report.residency]
    problems += audit_conservation(system.tracer, system.sim.now)
    return problems


def run_server_with_recovery(
    spec: ScenarioSpec,
    placement: Placement,
    server_index: int,
    policy: RecoveryPolicy,
    plan: Optional[FaultPlan] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> RecoveryReport:
    """Serve one server under supervision: checkpoint, restore, account.

    Drives ``spec.duration_ns`` of traffic in checkpoint-period chunks.
    A chunk that ends with the server failed (dead dedicated core, run
    errors, engine deadlock) triggers a restore from the last clean
    checkpoint; the failed timeline is discarded and replayed without
    the fault plan attached.  The drain / finish / result tail is the
    plain :func:`~repro.fleet.scenario.run_server` tail, so tenant
    results and conservation read identically either way.
    """
    state: Dict[str, Any] = {}

    def build() -> Any:
        server, injector = build_recoverable_server(
            spec, placement, server_index, plan, costs
        )
        state["server"], state["injector"] = server, injector
        return server.system

    recipe = Recipe(build=build)
    system = build()
    report = RecoveryReport()
    serve_end = system.sim.now + spec.duration_ns

    checkpoint: Snapshot = snapshot(
        system,
        recipe=recipe,
        label=f"boot@t={system.sim.now}",
        extra=_extra_state(state["server"], state["injector"]),
    )
    report.checkpoints += 1

    while system.sim.now < serve_end:
        target = min(system.sim.now + policy.checkpoint_period_ns, serve_end)
        reason: Optional[str] = None
        try:
            system.run_for(target - system.sim.now)
        except SimulationError as exc:
            reason = f"engine: {exc}"
        reason = reason or _failure_reason(state["server"])
        if reason is None:
            checkpoint = snapshot(
                system,
                recipe=recipe,
                label=f"ckpt-{report.checkpoints}@t={system.sim.now}",
                extra=_extra_state(state["server"], state["injector"]),
            )
            report.checkpoints += 1
            continue

        if len(report.restores) >= policy.max_restores:
            raise RecoveryError(
                f"server {server_index} failed ({reason}) after "
                f"{policy.max_restores} restore(s); giving up"
            )
        failed_at = system.sim.now
        system = restore(
            checkpoint,
            verify=policy.verify_restore,
            extra_fn=lambda _system: _extra_state(
                state["server"], state["injector"]
            ),
        )
        injector = state["injector"]
        if injector is not None:
            # the replayed timeline re-injected history faithfully up to
            # the checkpoint; from here the faulty part is replaced
            injector.detach_all()
        lost = failed_at - checkpoint.taken_at_ns
        report.restores.append(
            RestoreEvent(
                failed_at_ns=failed_at,
                checkpoint_ns=checkpoint.taken_at_ns,
                reason=reason,
                lost_ns=lost,
                downtime_ns=lost + policy.restore_penalty_ns,
            )
        )

    server = state["server"]
    drain_and_finish(server, spec)
    report.tenants = tenant_results(server)
    report.server = server

    # completions inside a recovery window are SLO casualties: the
    # tenant saw the outage even though the replayed timeline served
    # them cleanly
    violations = 0
    for event in report.restores:
        low = event.checkpoint_ns
        high = event.failed_at_ns + policy.restore_penalty_ns
        for client in server.clients:
            violations += sum(
                1 for when in client.stats.completed_at_ns if low <= when <= high
            )
    report.recovery_slo_violations = violations

    metrics = server.system.metrics
    metrics.gauge("snap_checkpoint_count").set(report.checkpoints)
    metrics.gauge("fleet_restore_count").set(len(report.restores))
    metrics.gauge("fleet_recovery_downtime_ns").set(report.downtime_ns)
    metrics.gauge("fleet_recovery_slo_violation_count").set(violations)

    report.audit_problems = audit_server(server)
    return report
