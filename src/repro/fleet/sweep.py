"""The ``fleet`` sweep: shared vs gapped serving across consolidation levels.

The paper evaluates one core-gapped server at a time (Table 5 runs a
single Redis CVM); this sweep asks the production question instead:
what happens when a *rack* of servers packs several serving CVMs per
machine?  For each consolidation level (tenants per server) it runs the
same open-loop Redis tenants on shared-core and core-gapped racks and
compares throughput, tail latency and SLO violations.

Every (level, mode, server) triple is one independent runner cell --
its own :class:`~repro.sim.engine.Simulator`, its own derived seed --
so the sweep is ``--jobs``-safe and digest-deterministic end to end::

    PYTHONPATH=src python -m repro.experiments.runner fleet --jobs 4
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..experiments.config import SystemConfig
from ..experiments.runner import Cell, cell, run_cells
from ..guest.workloads.redis import OP_GET, OP_SET
from ..sim.clock import ms
from .placement import place
from .scenario import TenantResult, boot_server, run_server
from .spec import ScenarioSpec, redis_tenant, uniform_rack

__all__ = [
    "DEFAULT_LEVELS",
    "FleetSweepResult",
    "consolidation_scenario",
    "fleet_cells",
    "run_fleet",
]

DEFAULT_LEVELS: Tuple[int, ...] = (1, 2, 3)
DEFAULT_MODES: Tuple[str, ...] = ("shared", "gapped")
#: tenant ops alternate: even tenants write-heavy, odd tenants read-heavy
_TENANT_OPS = (OP_SET, OP_GET)


def consolidation_scenario(
    level: int,
    mode: str,
    n_servers: int = 2,
    n_cores: int = 16,
    vcpus_per_tenant: int = 4,
    rate_rps: float = 6000.0,
    slo_ms: float = 2.0,
    duration_ns: int = ms(300),
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
    policy: Optional[str] = None,
) -> ScenarioSpec:
    """``level`` Redis tenants per server on a uniform rack.

    Spread placement balances the rack, so each server hosts exactly
    ``level`` tenants; the gapped rack's admission control still gates
    the result (``level * vcpus_per_tenant`` must fit the non-host
    cores).  ``policy`` overrides the isolation policy the mode implies
    (the defense-comparison sweep threads it through every server).
    """
    template = SystemConfig(mode=mode, n_cores=n_cores, policy=policy)
    tenants = tuple(
        redis_tenant(
            name=f"tenant-{index}",
            n_vcpus=vcpus_per_tenant,
            rate_rps=rate_rps,
            op=_TENANT_OPS[index % len(_TENANT_OPS)],
            slo_ms=slo_ms,
            costs=costs,
        )
        for index in range(level * n_servers)
    )
    return ScenarioSpec(
        servers=uniform_rack(
            n_servers, template, seed=_scenario_seed(seed, level, mode)
        ),
        tenants=tenants,
        duration_ns=duration_ns,
        seed=seed,
        placement="spread",
    )


def _scenario_seed(seed: int, level: int, mode: str) -> int:
    """Distinct rack seeds per sweep point, stable across processes."""
    from ..sim.rng import derive_seed

    return derive_seed(seed, "fleet-sweep", f"{level}/{mode}")


def _run_server_cell(
    level: int,
    mode: str,
    server_index: int,
    n_servers: int,
    rate_rps: float,
    duration_ns: int,
    seed: int,
    costs: CostModel,
) -> List[TenantResult]:
    """One sweep data point: a single server of one rack, served."""
    spec = consolidation_scenario(
        level,
        mode,
        n_servers=n_servers,
        rate_rps=rate_rps,
        duration_ns=duration_ns,
        seed=seed,
        costs=costs,
    )
    placement = place(spec)
    if placement.rejected:
        names = [name for name, _ in placement.rejected]
        raise ValueError(
            f"fleet sweep level {level}/{mode}: admission refused {names}; "
            "lower the level or grow the servers"
        )
    server = boot_server(spec, placement, server_index, costs)
    return run_server(server, spec)


@dataclass
class FleetSweepResult:
    """Per-tenant rows for every (level, mode, server) in the sweep."""

    levels: List[int] = field(default_factory=list)
    modes: List[str] = field(default_factory=list)
    #: (level, mode) -> tenant rows, merged in cell order
    rows: Dict[Tuple[int, str], List[TenantResult]] = field(
        default_factory=dict
    )

    def summary(self, level: int, mode: str) -> Dict[str, float]:
        """Rack-level aggregates for one sweep point."""
        tenants = self.rows.get((level, mode), [])
        issued = sum(r.issued for r in tenants)
        violations = sum(r.slo_violations for r in tenants)
        return {
            "tenants": len(tenants),
            "issued": issued,
            "completed": sum(r.completed for r in tenants),
            "dropped": sum(r.dropped for r in tenants),
            "throughput_krps": sum(r.throughput_krps for r in tenants),
            "p99_ms": max((r.p99_ms for r in tenants), default=0.0),
            "slo_violation_pct": (
                100.0 * violations / issued if issued else 0.0
            ),
        }


def fleet_cells(
    levels: Sequence[int] = DEFAULT_LEVELS,
    modes: Sequence[str] = DEFAULT_MODES,
    n_servers: int = 2,
    rate_rps: float = 6000.0,
    duration_ns: int = ms(300),
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    """The fleet sweep as independent runner cells, in merge order."""
    return [
        cell(
            f"fleet/{level}/{mode}/server{server_index}",
            _run_server_cell,
            level=level,
            mode=mode,
            server_index=server_index,
            n_servers=n_servers,
            rate_rps=rate_rps,
            duration_ns=duration_ns,
            seed=seed,
            costs=costs,
        )
        for level in levels
        for mode in modes
        for server_index in range(n_servers)
    ]


def run_fleet(
    levels: Sequence[int] = DEFAULT_LEVELS,
    modes: Sequence[str] = DEFAULT_MODES,
    n_servers: int = 2,
    rate_rps: float = 6000.0,
    duration_ns: int = ms(300),
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> FleetSweepResult:
    cells = fleet_cells(
        levels, modes, n_servers, rate_rps, duration_ns, seed, costs
    )
    outputs = run_cells(cells, jobs=jobs)
    result = FleetSweepResult(levels=list(levels), modes=list(modes))
    for c, tenants in zip(cells, outputs):
        key = (c.kwargs["level"], c.kwargs["mode"])
        result.rows.setdefault(key, []).extend(tenants)
    return result
