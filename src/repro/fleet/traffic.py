"""Open-loop tenant traffic: seeded Poisson arrivals, SLO accounting.

Table 5's ``RedisClientSim`` keeps 50 connections in *closed* loop: a
new request is issued only when a reply lands, so the client can never
overload the server.  Serving heavy public traffic is the opposite
regime -- arrivals do not wait for replies -- so the fleet layer drives
each tenant with an **open-loop** Poisson process: inter-arrival gaps
are exponential draws from a per-tenant substream of the server's
:class:`~repro.sim.rng.RngFactory`, and every request rides the exact
same wire/NIC/guest cost model as the closed-loop client
(``net_wire_ns`` -> ``deliver_rx`` -> guest netstack -> command cost ->
doorbell reply).

Per tenant we record every completed request's latency, count SLO
violations (completed late *or* still in flight when the scenario
ends), and publish the declared ``fleet_*`` metrics through the
system's typed registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.stats import mean, percentile
from ..costs import CostModel, DEFAULT_COSTS
from .spec import TenantSpec

__all__ = ["TenantStats", "OpenLoopClient"]


@dataclass
class TenantStats:
    """Raw per-tenant accounting (latencies in integer simulated ns)."""

    issued: int = 0
    completed: int = 0
    latencies_ns: List[int] = field(default_factory=list)
    #: completion timestamp of each reply, aligned with latencies_ns --
    #: the recovery supervisor uses these to attribute completions that
    #: landed inside a restore window to recovery downtime
    completed_at_ns: List[int] = field(default_factory=list)
    slo_late: int = 0
    started_at: int = 0
    stopped_at: int = 0
    finished_at: int = 0

    @property
    def dropped(self) -> int:
        """Requests still unanswered when the scenario ended."""
        return self.issued - self.completed

    @property
    def slo_violations(self) -> int:
        """Late completions plus requests that never completed at all."""
        return self.slo_late + self.dropped

    def percentile_ms(self, pct: float) -> float:
        return percentile(self.latencies_ns, pct) / 1e6

    def mean_ms(self) -> float:
        return mean(self.latencies_ns) / 1e6

    def throughput_krps(self) -> float:
        """Completions per second of offered-load window, in krps."""
        window = self.stopped_at - self.started_at
        if window <= 0:
            return 0.0
        return self.completed / (window / 1e9) / 1e3


class OpenLoopClient:
    """One tenant's load generator against its (booted) serving VM."""

    def __init__(
        self,
        system,
        tenant: TenantSpec,
        device,
        rng,
        costs: CostModel = DEFAULT_COSTS,
    ):
        if tenant.traffic is None:
            raise ValueError(f"tenant {tenant.name!r} has no traffic spec")
        self.system = system
        self.tenant = tenant
        self.traffic = tenant.traffic
        self.device = device
        self.rng = rng
        self.costs = costs
        self.sim = system.sim
        self.stats = TenantStats()
        slo_ms = tenant.vm.slo_ms
        self._slo_ns: Optional[int] = (
            None if slo_ms is None else int(round(slo_ms * 1e6))
        )
        #: mean inter-arrival gap in ns (Poisson process parameter)
        self._mean_gap_ns = 1e9 / self.traffic.rate_rps
        self._deadline: Optional[int] = None
        self._open = False

    # ------------------------------------------------------------------
    # arrival process
    # ------------------------------------------------------------------

    def start(self, duration_ns: int) -> None:
        """Offer load for ``duration_ns`` of simulated time from now."""
        self.stats.started_at = self.sim.now
        self.stats.stopped_at = self.sim.now + duration_ns
        self._deadline = self.sim.now + duration_ns
        self._open = True
        self._schedule_arrival()

    def _schedule_arrival(self) -> None:
        gap_ns = int(self.rng.expovariate(1.0 / self._mean_gap_ns)) + 1
        if self._deadline is not None and self.sim.now + gap_ns >= self._deadline:
            self._open = False  # offered-load window over; stop drawing
            return
        self.sim.schedule(gap_ns, self._arrive)

    def stop(self) -> None:
        """Close the offered-load window now (eviction / migration).

        Idempotent.  In-flight requests keep completing; requests still
        unanswered when the tenant's accounting is frozen count as
        dropped, so offered == completed + dropped stays exact.
        """
        if self._open:
            self.stats.stopped_at = self.sim.now
        self._open = False

    def _arrive(self) -> None:
        if not self._open:
            return  # stopped while this arrival was already scheduled
        self._issue()
        self._schedule_arrival()

    # ------------------------------------------------------------------
    # request path (the RedisClientSim cost model, open loop)
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        self.stats.issued += 1
        op = self.traffic.op
        request: Dict[str, Any] = {
            "op": op,
            "sent_at": self.sim.now,
            "reply_fn": self._on_reply,
        }
        # client -> server wire latency, then the NIC rx path in the guest
        vcpu = 0  # the single Redis instance listens on vCPU 0
        self.sim.schedule(
            self.costs.net_wire_ns,
            lambda: self.device.deliver_rx(vcpu, request, op.request_bytes),
        )

    def _on_reply(self, reply: Dict[str, Any]) -> None:
        latency_ns = self.sim.now - reply["sent_at"]
        stats = self.stats
        stats.completed += 1
        stats.latencies_ns.append(latency_ns)
        stats.completed_at_ns.append(self.sim.now)
        stats.finished_at = self.sim.now
        metrics = self.system.metrics
        metrics.counter("fleet_request_count").inc()
        metrics.histogram("fleet_request_latency_ns").observe(latency_ns)
        if self._slo_ns is not None and latency_ns > self._slo_ns:
            stats.slo_late += 1
            metrics.counter("fleet_slo_violation_count").inc()

    # ------------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """No arrivals left to draw and every issued request answered."""
        return not self._open and self.stats.completed >= self.stats.issued
