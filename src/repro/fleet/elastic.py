"""The elastic fleet: tenant churn, hotplug autoscaling, rebalancing.

The static :class:`~repro.fleet.spec.ScenarioSpec` world fixes tenants
at boot; the paper's north-star deployment is the opposite — tenants
arrive, grow, shrink, move and leave while the rack keeps serving.
This module promotes the boot-time spec into a lifecycle API:

* :class:`FleetController` owns a booted fleet and exposes the four
  lifecycle verbs — ``admit`` / ``evict`` / ``resize`` / ``migrate`` —
  each driving the *existing* machinery (placement bin-packing, the
  planner's delegated hotplug + RMI flow, the snapshot digests) rather
  than a parallel code path.  Every verb appends a :class:`FleetEvent`
  to the controller's event-sourced timeline, which the sweeps and the
  report consume.  ``ScenarioSpec.boot()`` is the static special case:
  constructing a controller performs the exact place + boot sequence
  the static path always did (bit-identical digests, pinned by
  ``tests/fleet/test_static_golden.py``).
* :class:`ChurnSpec` layers a seeded tenant arrival/departure process
  over a scenario: Poisson arrivals and exponential lifetime draws
  from churn-owned RNG streams (never the servers' machine streams),
  admitted mid-run through the same bin-packing as boot-time tenants
  and drained on departure so request conservation
  (offered == completed + dropped) stays exact.
* :class:`AutoscalePolicy` grows/shrinks a serving CVM one vCPU per
  epoch toward the observed offered load, via the paper's core-hotplug
  path (``HotplugController`` offline/online through the planner's
  delegated RMI flow); every transition is followed by a core-gap
  audit.
* :class:`RebalancePolicy` migrates a tenant between servers when
  placement degrades, verifying the migration image with the snapshot
  digest machinery and charging the blackout window to the tenant's
  SLO accounting.

Servers remain independent simulations.  The controller interleaves
them on a common *fleet clock* — epoch boundaries in serving time — so
the whole elastic run is deterministic for a given seed and shards
into runner cells (one elastic scenario per cell) with digest-stable
results across ``--jobs``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..host.planner import AdmissionError
from ..host.threads import HostThread, SchedClass
from ..security.audit import CoreGapAuditor
from ..sim.clock import ms
from ..sim.engine import SimulationError
from ..sim.rng import RngFactory, derive_seed
from ..snap import capture_digest, capture_object
from .placement import (
    FleetAdmissionError,
    choose_server,
    place,
    server_capacity,
)
from .scenario import (
    BootedServer,
    BootedVm,
    Fleet,
    boot_server,
    boot_vm,
)
from .spec import ScenarioSpec, TenantSpec, resolve_admission
from .traffic import OpenLoopClient

__all__ = [
    "ELASTIC_VARIANTS",
    "ChurnSpec",
    "AutoscalePolicy",
    "RebalancePolicy",
    "FleetEvent",
    "ElasticTenantRow",
    "ElasticOutcome",
    "FleetController",
    "churn_schedule",
    "default_churn_tenant",
    "elastic_cells",
    "run_elastic",
    "run_elastic_case",
    "run_elastic_sweep",
    "storm_stream",
]


# ---------------------------------------------------------------------------
# policy specs (frozen data, like the scenario specs they extend)


@dataclass(frozen=True)
class ChurnSpec:
    """A seeded tenant arrival/departure process over one scenario.

    Arrival gaps are exponential with mean ``1/arrival_rate_per_s``;
    each arriving tenant draws an exponential lifetime (floored at
    ``min_lifetime_ns``).  Both processes come from churn-owned RNG
    streams derived from the scenario seed — adding churn never
    perturbs any server's machine streams, and the whole schedule is
    drawn up front so it is independent of simulation interleaving.
    """

    #: tenant arrivals per second of simulated serving time
    arrival_rate_per_s: float
    #: mean tenant lifetime (exponential draw)
    mean_lifetime_ns: int
    #: builds the k-th churned tenant's spec (name must embed ``k``)
    tenant_factory: Callable[[int], TenantSpec]
    #: lifetime draws below this are clamped up (a tenant lives at
    #: least one epoch)
    min_lifetime_ns: int = ms(10)
    #: at most this many churned tenants live at once; arrivals beyond
    #: the cap are refused (recorded as rejects, like admission refusals)
    max_concurrent: int = 8
    #: drain budget when a departing tenant's traffic is stopped
    drain_ns: int = ms(5)


@dataclass(frozen=True)
class AutoscalePolicy:
    """Per-tenant vCPU autoscaling toward the observed offered load.

    Each epoch the controller estimates a tenant's offered rate from
    its issued-request delta and moves the active vCPU count one step
    toward ``ceil(observed_rps / rps_per_vcpu)`` (clamped to
    ``[min_vcpus, spec vCPUs]``).  Growing hotplugs a free core away
    from the host and dedicates it; shrinking parks the vCPU and
    returns its core.  Serving vCPU 0 is never shrunk away.
    """

    #: offered load one vCPU is provisioned for
    rps_per_vcpu: float = 2000.0
    min_vcpus: int = 1

    def desired_vcpus(self, observed_rps: float, spec_vcpus: int) -> int:
        want = math.ceil(observed_rps / self.rps_per_vcpu) if observed_rps > 0 else self.min_vcpus
        return max(self.min_vcpus, min(spec_vcpus, want))


@dataclass(frozen=True)
class RebalancePolicy:
    """Migrate a tenant when the rack's placement degrades.

    Placement "degrades" when the used-vCPU imbalance between the
    fullest and emptiest server reaches ``imbalance_threshold``; the
    controller then moves the smallest movable tenant from the fullest
    server to the emptiest (at most one migration per epoch).  The
    migration blackout — drain on the source plus ``downtime_ns`` of
    transfer/restore — is charged to the tenant's SLO accounting.
    """

    imbalance_threshold: int = 4
    #: modelled transfer + restore blackout on the destination
    downtime_ns: int = ms(2)
    #: drain budget for in-flight requests on the source
    drain_ns: int = ms(5)


# ---------------------------------------------------------------------------
# the event-sourced timeline


@dataclass(frozen=True)
class FleetEvent:
    """One lifecycle transition, in fleet (serving-clock) time."""

    t_ns: int
    verb: str  # "admit" | "reject" | "evict" | "resize" | "migrate"
    tenant: str
    server: int  # -1 when no server took the tenant (reject)
    detail: str = ""


@dataclass(frozen=True)
class ElasticTenantRow:
    """One tenant's merged outcome across every server it lived on."""

    tenant: str
    servers: Tuple[int, ...]
    admitted_ns: int
    departed_ns: Optional[int]
    issued: int
    completed: int
    dropped: int
    slo_violations: int
    #: synthetic SLO charge for migration blackouts (expected arrivals
    #: during downtime); kept separate so offered == completed + dropped
    #: stays exact
    migration_slo_charge: int
    p50_ms: float
    p99_ms: float
    resizes: int
    migrations: int


@dataclass
class ElasticOutcome:
    """Everything one elastic run produced (pure data; pickles)."""

    rows: List[ElasticTenantRow] = field(default_factory=list)
    timeline: List[FleetEvent] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    audit_problems: List[str] = field(default_factory=list)
    #: per-server digested counter maps (the sanitizer's currency)
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    end_ns: Dict[str, int] = field(default_factory=dict)

    @property
    def conservation_ok(self) -> bool:
        return all(
            row.issued == row.completed + row.dropped for row in self.rows
        )


# ---------------------------------------------------------------------------
# churn schedule (drawn up front from churn-owned streams)


@dataclass(frozen=True)
class ChurnArrival:
    t_ns: int
    index: int
    lifetime_ns: int


def churn_schedule(
    churn: ChurnSpec, seed: int, horizon_ns: int
) -> List[ChurnArrival]:
    """Draw the full arrival/lifetime schedule for one run.

    Deterministic in ``(churn, seed, horizon_ns)`` and independent of
    anything the servers do: the streams hang off a root factory
    derived from the scenario seed under the ``churn`` namespace.
    """
    rng = RngFactory(derive_seed(seed, "fleet-churn", "process"))
    arrivals = rng.stream("churn:arrivals")
    lifetimes = rng.stream("churn:lifetimes")
    mean_gap_ns = 1e9 / churn.arrival_rate_per_s
    schedule: List[ChurnArrival] = []
    t = 0
    index = 0
    while True:
        t += int(arrivals.expovariate(1.0 / mean_gap_ns)) + 1
        if t >= horizon_ns:
            return schedule
        life = int(lifetimes.expovariate(1.0 / churn.mean_lifetime_ns)) + 1
        schedule.append(
            ChurnArrival(
                t_ns=t,
                index=index,
                lifetime_ns=max(life, churn.min_lifetime_ns),
            )
        )
        index += 1


# ---------------------------------------------------------------------------
# the controller


class FleetController:
    """Lifecycle owner of one booted fleet.

    Construction performs the static boot (exactly the sequence
    ``boot_scenario`` always performed); afterwards the lifecycle
    verbs mutate the fleet while keeping the controller's capacity
    view, the planner's core allocations and the event timeline in
    lock-step.  All verbs other than construction require core-gapped
    servers — they ride the hotplug/park machinery, which shared-core
    mode does not have.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        costs: CostModel = DEFAULT_COSTS,
        admission: str = "strict",
    ):
        admission = resolve_admission(admission)
        self.spec = spec
        self.costs = costs
        placement = place(spec)
        if admission == "strict" and placement.rejected:
            detail = "; ".join(
                f"{name}: {reason}" for name, reason in placement.rejected
            )
            raise FleetAdmissionError(
                f"{len(placement.rejected)} tenant(s) refused admission: "
                f"{detail}"
            )
        servers = [
            boot_server(spec, placement, index, costs)
            for index in range(len(spec.servers))
        ]
        self.fleet = Fleet(spec, placement, servers)
        self.fleet.controller = self
        self.timeline: List[FleetEvent] = []
        self.counts: Dict[str, int] = {
            "admit": 0,
            "reject": 0,
            "evict": 0,
            "resize_up": 0,
            "resize_down": 0,
            "resize_refused": 0,
            "migrate": 0,
        }
        self.audit_problems: List[str] = []
        #: tenant -> current server index
        self.where: Dict[str, int] = {}
        #: tenant -> currently active vCPU count (autoscaler view)
        self.active_vcpus: Dict[str, int] = {}
        #: tenant -> spec (static + admitted churn tenants)
        self.tenants: Dict[str, TenantSpec] = {}
        #: tenant -> BootedVm on its current server
        self.booted: Dict[str, BootedVm] = {}
        #: live free capacity per server, in vCPU units
        self.free: List[int] = list(placement.free)
        #: tenant -> [admitted_ns, departed_ns|None, resizes, migrations,
        #:            migration_slo_charge, servers...]
        self._history: Dict[str, Dict] = {}
        #: per-server sim time at fleet-clock zero (set by start_serving)
        self._base: List[int] = [s.system.sim.now for s in servers]
        self.t_ns = 0
        self._serving = False
        self._horizon_ns = 0

        for name, index in placement.assignments:
            tenant = next(t for t in spec.tenants if t.name == name)
            self._register(tenant, index, at_ns=0)
            self.timeline.append(FleetEvent(0, "admit", name, index, "boot"))
            self.counts["admit"] += 1
        for name, reason in placement.rejected:
            self.timeline.append(FleetEvent(0, "reject", name, -1, reason))
            self.counts["reject"] += 1

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------

    def _register(self, tenant: TenantSpec, server: int, at_ns: int) -> None:
        name = tenant.name
        self.where[name] = server
        self.active_vcpus[name] = tenant.vm.n_vcpus
        self.tenants[name] = tenant
        self._history[name] = {
            "admitted_ns": at_ns,
            "departed_ns": None,
            "resizes": 0,
            "migrations": 0,
            "migration_slo_charge": 0,
            "servers": [server],
        }
        for vm in self.fleet.servers[server].vms:
            if vm.spec.name == name:
                self.booted[name] = vm

    def _server(self, name: str) -> BootedServer:
        return self.fleet.servers[self.where[name]]

    def _clients_of(self, name: str) -> List[OpenLoopClient]:
        clients: List[OpenLoopClient] = []
        for server in self.fleet.servers:
            clients.extend(
                c for c in server.clients if c.tenant.name == name
            )
        return clients

    def _require_gapped(self, server: BootedServer, verb: str) -> None:
        if not server.system.config.is_gapped:
            raise SimulationError(
                f"FleetController.{verb} needs a core-gapped server; "
                f"server {server.index} runs mode "
                f"{server.system.config.mode!r}"
            )

    def _run_planner(self, server: BootedServer, label: str, gen):
        """Drive one planner thread body to completion on a server.

        Planner refusals (:class:`AdmissionError`, ``SimulationError``)
        are caught *inside* the thread body and re-raised here, in the
        controller's frame — an exception crossing the kernel scheduler
        would abort the simulation mid-timestep.
        """
        system = server.system

        def body():
            try:
                result = yield from gen
            except (AdmissionError, SimulationError) as exc:
                return ("error", exc)
            return ("ok", result)

        thread = HostThread(
            name=label,
            body=body(),
            sched_class=SchedClass.FAIR,
            affinity=system.host_cores,
        )
        system.kernel.add_thread(thread)
        system.run_until_event(thread.done_event)
        status, value = thread.result
        if status == "error":
            raise value
        return value

    def _refresh_free(self, server: BootedServer) -> None:
        """Re-derive a gapped server's free capacity from the planner.

        The planner's ``free_cores`` is ground truth (it sees aborted
        transitions that park cores offline); mirroring it keeps the
        controller's admission view honest under storms.
        """
        if server.system.config.is_gapped:
            self.free[server.index] = len(server.system.planner.free_cores())

    def audit_transitions(self, server: BootedServer, what: str) -> None:
        """Core-gap audit after one transition; problems accumulate.

        Runs the occupancy-window sharing audit over the spans closed
        so far plus the residency audit over every core's uarch
        structures, and cross-checks the hotplug transition log.
        (``CoreGapAuditor.audit`` would close all open spans — a
        mid-run mutation — so the two halves are called directly.)
        """
        system = server.system
        auditor = CoreGapAuditor()
        problems = [
            f"server{server.index}/{what}: {violation}"
            for violation in auditor.audit_schedule(system.tracer)
            + auditor.audit_residency(system.machine)
        ]
        if system.config.is_gapped:
            problems.extend(
                f"server{server.index}/{what}: {p}"
                for p in system.planner.hotplug.audit()
            )
        self.audit_problems.extend(problems)

    # ------------------------------------------------------------------
    # fleet clock
    # ------------------------------------------------------------------

    def start_serving(self, horizon_ns: int) -> None:
        """Open the static tenants' traffic and zero the fleet clock."""
        if self._serving:
            raise SimulationError("start_serving called twice")
        self._serving = True
        self._horizon_ns = horizon_ns
        self._base = [s.system.sim.now for s in self.fleet.servers]
        for server in self.fleet.servers:
            for client in server.clients:
                client.start(horizon_ns)

    def advance_to(self, t_ns: int) -> None:
        """Advance every server to fleet time ``t_ns``, in index order."""
        for server in self.fleet.servers:
            target = self._base[server.index] + t_ns
            now = server.system.sim.now
            if target > now:
                server.system.run_for(target - now)
        self.t_ns = t_ns

    def _local_now(self, server: BootedServer) -> int:
        return server.system.sim.now - self._base[server.index]

    # ------------------------------------------------------------------
    # the lifecycle verbs
    # ------------------------------------------------------------------

    def admit(self, tenant: TenantSpec, window_ns: int) -> Optional[int]:
        """Admit one tenant mid-run; returns its server or None.

        Runs the same bin-packing step boot-time placement uses
        against the live free-capacity view, boots the VM through the
        planner's launch flow (hotplug + realm build), and opens its
        traffic for ``window_ns`` of serving time.
        """
        name = tenant.name
        if name in self.where:
            raise SimulationError(f"tenant {name!r} already admitted")
        need = tenant.vm.n_vcpus
        index = choose_server(need, self.free, self.spec.placement)
        if index is None:
            self.counts["reject"] += 1
            self.timeline.append(
                FleetEvent(
                    self.t_ns,
                    "reject",
                    name,
                    -1,
                    f"needs {need} core(s); free per server: {self.free}",
                )
            )
            return None
        server = self.fleet.servers[index]
        self._require_gapped(server, "admit")
        try:
            booted = boot_vm(server.system, tenant.vm, self.costs)
        except (AdmissionError, SimulationError) as exc:
            # free-capacity view said yes but the machine said no (e.g.
            # cores parked offline by aborted transitions): refuse
            self._refresh_free(server)
            self.counts["reject"] += 1
            self.timeline.append(
                FleetEvent(self.t_ns, "reject", name, index, str(exc))
            )
            return None
        server.vms.append(booted)
        if tenant.traffic is not None:
            fleet_rng = server.system.machine.rng.fork("fleet")
            client = OpenLoopClient(
                server.system,
                tenant,
                booted.devices[tenant.traffic.device],
                rng=fleet_rng.stream(f"arrivals:{name}"),
                costs=self.costs,
            )
            server.clients.append(client)
            client.start(window_ns)
        self._register(tenant, index, at_ns=self.t_ns)
        self._refresh_free(server)
        self.counts["admit"] += 1
        self.timeline.append(FleetEvent(self.t_ns, "admit", name, index))
        self.audit_transitions(server, f"admit:{name}")
        return index

    def evict(self, name: str, drain_ns: int, reason: str = "") -> None:
        """Stop a tenant's traffic, drain, tear its CVM down.

        Request conservation stays exact: arrivals close first, the
        drain window lets in-flight requests finish, and whatever is
        still unanswered counts as dropped (the open-loop regime's
        honest outcome).
        """
        server = self._server(name)
        self._require_gapped(server, "evict")
        system = server.system
        clients = [c for c in server.clients if c.tenant.name == name]
        for client in clients:
            client.stop()
        if clients and drain_ns > 0:
            try:
                system.run_until(
                    lambda: all(c.drained for c in clients),
                    limit_ns=drain_ns,
                )
            except SimulationError:
                pass  # drain budget spent; leftovers count as dropped
        booted = self.booted[name]
        self._run_planner(
            server,
            f"planner-evict:{name}",
            system.planner.evict_cvm(booted.kvm),
        )
        self._history[name]["departed_ns"] = self.t_ns
        self.where.pop(name)
        self.active_vcpus.pop(name)
        self._refresh_free(server)
        self.counts["evict"] += 1
        self.timeline.append(
            FleetEvent(self.t_ns, "evict", name, server.index, reason)
        )
        self.audit_transitions(server, f"evict:{name}")

    def resize(self, name: str, target_vcpus: int) -> int:
        """Grow/shrink a tenant one vCPU at a time toward the target.

        Shrinking parks the highest-index active vCPU and returns its
        core to the host (UnbindCall + release + hotplug online); the
        serving vCPU 0 is never parked.  Growing hotplugs a free core
        back and resumes the parked vCPU.  Returns the active count
        actually reached (growth stops cleanly when no core is free).
        """
        server = self._server(name)
        self._require_gapped(server, "resize")
        tenant = self.tenants[name]
        target = max(1, min(tenant.vm.n_vcpus, target_vcpus))
        kvm = self.booted[name].kvm
        active = self.active_vcpus[name]
        while active != target:
            if active > target:
                idx = active - 1
                self._run_planner(
                    server,
                    f"planner-shrink:{name}.{idx}",
                    server.system.planner.shrink_vcpu(kvm, idx),
                )
                active -= 1
                self.counts["resize_down"] += 1
                detail = f"shrink to {active}"
            else:
                idx = active
                try:
                    self._run_planner(
                        server,
                        f"planner-grow:{name}.{idx}",
                        server.system.planner.grow_vcpu(kvm, idx),
                    )
                except (AdmissionError, SimulationError) as exc:
                    self.counts["resize_refused"] += 1
                    self.timeline.append(
                        FleetEvent(
                            self.t_ns,
                            "resize",
                            name,
                            server.index,
                            f"grow refused: {exc}",
                        )
                    )
                    break
                active += 1
                self.counts["resize_up"] += 1
                detail = f"grow to {active}"
            self.active_vcpus[name] = active
            self._history[name]["resizes"] += 1
            self._refresh_free(server)
            self.timeline.append(
                FleetEvent(self.t_ns, "resize", name, server.index, detail)
            )
            self.audit_transitions(server, f"resize:{name}")
        return active

    def migrate(
        self,
        name: str,
        to_server: int,
        window_ns: int,
        policy: RebalancePolicy,
    ) -> bool:
        """Move a tenant to another server (drain, verify, rebuild).

        The source freezes the tenant's arrivals and drains; the
        migration image (tenant identity, sizing, cumulative request
        accounting) is canonicalized and digest-verified on both sides
        with the snapshot machinery; the destination rebuilds the CVM
        from its spec — restore-by-reexecution, as the recovery
        supervisor does — and re-opens traffic after the modelled
        blackout.  The blackout's expected arrivals are charged to the
        tenant's SLO accounting as ``migration_slo_charge``.
        """
        src = self._server(name)
        dst = self.fleet.servers[to_server]
        self._require_gapped(src, "migrate")
        self._require_gapped(dst, "migrate")
        tenant = self.tenants[name]
        need = tenant.vm.n_vcpus
        if self.free[to_server] < need:
            raise SimulationError(
                f"server {to_server} lacks {need} free core(s) for {name}"
            )
        # 1. freeze + drain on the source
        clients = [c for c in src.clients if c.tenant.name == name]
        for client in clients:
            client.stop()
        if clients and policy.drain_ns > 0:
            try:
                src.system.run_until(
                    lambda: all(c.drained for c in clients),
                    limit_ns=policy.drain_ns,
                )
            except SimulationError:
                pass
        # 2. pack the migration image and digest it (transfer integrity)
        image = {
            "tenant": name,
            "n_vcpus": tenant.vm.n_vcpus,
            "memory_gib": tenant.vm.memory_gib,
            "stats": [capture_object(c.stats) for c in clients],
        }
        pack_digest = capture_digest(image)
        # 3. tear down on the source
        booted = self.booted[name]
        self._run_planner(
            src,
            f"planner-migrate-out:{name}",
            src.system.planner.evict_cvm(booted.kvm),
        )
        self._refresh_free(src)
        self.audit_transitions(src, f"migrate-out:{name}")
        # 4. verify the image landed intact, then rebuild on the dest
        if capture_digest(image) != pack_digest:
            raise SimulationError(
                f"migration image of {name} corrupted in transfer"
            )
        new_booted = boot_vm(dst.system, tenant.vm, self.costs)
        dst.vms.append(new_booted)
        self.booted[name] = new_booted
        self.where[name] = to_server
        self.active_vcpus[name] = tenant.vm.n_vcpus
        self._history[name]["migrations"] += 1
        self._history[name]["servers"].append(to_server)
        self._refresh_free(dst)
        # 5. re-open traffic after the blackout; charge it to the SLO
        downtime_ns = policy.downtime_ns
        if tenant.traffic is not None:
            segment = len(self._history[name]["servers"]) - 1
            fleet_rng = dst.system.machine.rng.fork("fleet")
            client = OpenLoopClient(
                dst.system,
                tenant,
                new_booted.devices[tenant.traffic.device],
                rng=fleet_rng.stream(f"arrivals:{name}:m{segment}"),
                costs=self.costs,
            )
            dst.clients.append(client)
            remaining = max(0, window_ns - downtime_ns)

            def reopen(client=client, remaining=remaining):
                if remaining > 0:
                    client.start(remaining)

            dst.system.sim.schedule(downtime_ns, reopen)
            charge = int(
                round(tenant.traffic.rate_rps * downtime_ns / 1e9)
            )
            self._history[name]["migration_slo_charge"] += charge
            metrics = dst.system.metrics
            gauge = metrics.gauge("fleet_migration_downtime_ns")
            gauge.set((gauge.value or 0) + downtime_ns)
        self.counts["migrate"] += 1
        self.timeline.append(
            FleetEvent(
                self.t_ns,
                "migrate",
                name,
                to_server,
                f"from server {src.index}; image {pack_digest[:12]}",
            )
        )
        self.audit_transitions(dst, f"migrate-in:{name}")
        return True

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def finish(self) -> None:
        """Stop every client, drain each server, finish the systems."""
        for server in self.fleet.servers:
            for client in server.clients:
                client.stop()
            drain_ns = self.spec.drain_ns
            if server.clients and drain_ns > 0:
                try:
                    server.system.run_until(
                        lambda s=server: all(
                            c.drained for c in s.clients
                        ),
                        limit_ns=drain_ns,
                    )
                except SimulationError:
                    pass
            server.system.finish()
            metrics = server.system.metrics
            metrics.gauge("fleet_offered_count").set(
                sum(c.stats.issued for c in server.clients)
            )
            metrics.gauge("fleet_dropped_count").set(
                sum(c.stats.dropped for c in server.clients)
            )
            self.audit_transitions(server, "finish")
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        metrics = self.fleet.servers[0].system.metrics
        metrics.gauge("fleet_admit_count").set(self.counts["admit"])
        metrics.gauge("fleet_evict_count").set(self.counts["evict"])
        metrics.gauge("fleet_reject_count").set(self.counts["reject"])
        metrics.gauge("fleet_resize_up_count").set(self.counts["resize_up"])
        metrics.gauge("fleet_resize_down_count").set(
            self.counts["resize_down"]
        )
        metrics.gauge("fleet_migrate_count").set(self.counts["migrate"])

    def tenant_rows(self) -> List[ElasticTenantRow]:
        """Per-tenant outcomes merged across every serving segment."""
        rows: List[ElasticTenantRow] = []
        for name in sorted(self._history):
            history = self._history[name]
            clients = self._clients_of(name)
            issued = sum(c.stats.issued for c in clients)
            completed = sum(c.stats.completed for c in clients)
            slo_late = sum(c.stats.slo_late for c in clients)
            latencies: List[int] = []
            for client in clients:
                latencies.extend(client.stats.latencies_ns)
            latencies.sort()

            def pct(p: float) -> float:
                if not latencies:
                    return 0.0
                k = min(
                    len(latencies) - 1,
                    max(0, math.ceil(p / 100 * len(latencies)) - 1),
                )
                return latencies[k] / 1e6

            dropped = issued - completed
            rows.append(
                ElasticTenantRow(
                    tenant=name,
                    servers=tuple(history["servers"]),
                    admitted_ns=history["admitted_ns"],
                    departed_ns=history["departed_ns"],
                    issued=issued,
                    completed=completed,
                    dropped=dropped,
                    slo_violations=slo_late + dropped,
                    migration_slo_charge=history["migration_slo_charge"],
                    p50_ms=pct(50),
                    p99_ms=pct(99),
                    resizes=history["resizes"],
                    migrations=history["migrations"],
                )
            )
        return rows

    def outcome(self) -> ElasticOutcome:
        counters = {
            f"server{s.index}": {
                k: int(v) for k, v in sorted(s.system.tracer.counters.items())
            }
            for s in self.fleet.servers
        }
        end_ns = {
            f"server{s.index}": s.system.sim.now for s in self.fleet.servers
        }
        return ElasticOutcome(
            rows=self.tenant_rows(),
            timeline=list(self.timeline),
            counts=dict(self.counts),
            audit_problems=list(self.audit_problems),
            counters=counters,
            end_ns=end_ns,
        )


# ---------------------------------------------------------------------------
# the epoch loop


def run_elastic(
    spec: ScenarioSpec,
    churn: Optional[ChurnSpec] = None,
    autoscale: Optional[AutoscalePolicy] = None,
    rebalance: Optional[RebalancePolicy] = None,
    epoch_ns: int = ms(25),
    costs: CostModel = DEFAULT_COSTS,
    admission: str = "strict",
) -> ElasticOutcome:
    """Serve one elastic scenario end to end and return its outcome.

    The controller advances every server to common epoch boundaries in
    serving time and, at each boundary, processes departures, then
    arrivals, then autoscaling, then (at most one) rebalancing
    migration.  The whole run is deterministic in ``spec.seed``.
    """
    controller = FleetController(spec, costs=costs, admission=admission)
    horizon = spec.duration_ns
    controller.start_serving(horizon)
    schedule = (
        churn_schedule(churn, spec.seed, horizon) if churn is not None else []
    )
    arrivals = list(schedule)  # consumed front to back (time-sorted)
    departures: List[Tuple[int, str]] = []
    live_churn = 0
    #: per-tenant issued totals at the previous epoch (autoscale signal)
    last_issued: Dict[str, int] = {}

    t = 0
    while t < horizon:
        t = min(t + epoch_ns, horizon)
        controller.advance_to(t)

        # departures first: free capacity before admitting newcomers
        departures.sort()
        while departures and departures[0][0] <= t:
            _, name = departures.pop(0)
            if name in controller.where:
                controller.evict(
                    name,
                    churn.drain_ns if churn is not None else spec.drain_ns,
                    reason="lifetime over",
                )
                live_churn -= 1

        while arrivals and arrivals[0].t_ns <= t:
            arrival = arrivals.pop(0)
            tenant = churn.tenant_factory(arrival.index)
            if live_churn >= churn.max_concurrent:
                controller.counts["reject"] += 1
                controller.timeline.append(
                    FleetEvent(
                        t,
                        "reject",
                        tenant.name,
                        -1,
                        f"churn cap {churn.max_concurrent} reached",
                    )
                )
                continue
            window = min(arrival.lifetime_ns, horizon - t)
            if window <= 0:
                continue
            server = controller.admit(tenant, window)
            if server is not None:
                live_churn += 1
                departures.append((t + arrival.lifetime_ns, tenant.name))

        if autoscale is not None:
            epoch_s = epoch_ns / 1e9
            for name in list(controller.where):
                tenant = controller.tenants[name]
                if tenant.traffic is None:
                    continue
                issued = sum(
                    c.stats.issued for c in controller._clients_of(name)
                )
                observed_rps = (issued - last_issued.get(name, 0)) / epoch_s
                last_issued[name] = issued
                desired = autoscale.desired_vcpus(
                    observed_rps, tenant.vm.n_vcpus
                )
                active = controller.active_vcpus[name]
                if desired != active:
                    step = active + (1 if desired > active else -1)
                    controller.resize(name, step)

        if rebalance is not None and t < horizon:
            _maybe_rebalance(controller, rebalance, horizon - t)

    controller.finish()
    return controller.outcome()


def _maybe_rebalance(
    controller: FleetController,
    policy: RebalancePolicy,
    window_ns: int,
) -> None:
    """One rebalancing decision: move the smallest movable tenant from
    the fullest server to the emptiest when imbalance crosses the
    threshold and the move strictly reduces it."""
    fleet = controller.fleet
    capacity = [server_capacity(c) for c in fleet.spec.servers]
    used = [
        capacity[i] - controller.free[i] for i in range(len(capacity))
    ]
    fullest = max(range(len(used)), key=lambda i: (used[i], -i))
    emptiest = min(range(len(used)), key=lambda i: (used[i], i))
    imbalance = used[fullest] - used[emptiest]
    if fullest == emptiest or imbalance < policy.imbalance_threshold:
        return
    movable = sorted(
        (
            controller.active_vcpus[name],
            name,
        )
        for name, server in controller.where.items()
        if server == fullest
    )
    for size, name in movable:
        if size > controller.free[emptiest]:
            continue
        # the move must strictly reduce imbalance, not just shuffle it
        if (used[fullest] - size) - (used[emptiest] + size) <= -imbalance:
            continue
        controller.migrate(name, emptiest, window_ns, policy)
        return


# ---------------------------------------------------------------------------
# the elastic sweep


#: sweep variants: each exercises one lifecycle axis, ``full`` all three
ELASTIC_VARIANTS: Tuple[str, ...] = ("churn", "autoscale", "rebalance", "full")


def default_churn_tenant(index: int) -> TenantSpec:
    """The standard churned tenant: a small 2-vCPU Redis server."""
    from .spec import redis_tenant

    return redis_tenant(f"churn-{index}", n_vcpus=2, rate_rps=3000.0)


def _elastic_case(variant: str, duration_ns: int, seed: int, costs: CostModel):
    """Build (spec, churn, autoscale, rebalance) for one sweep variant.

    Unlike the static fleet sweep, an elastic cell is a *whole*
    scenario (migration couples servers), so each variant is exactly
    one cell and the per-variant policies live here, not in cell
    kwargs (policy objects carry callables and must not be pickled).
    """
    from ..experiments.config import SystemConfig
    from .spec import redis_tenant, uniform_rack
    from .sweep import consolidation_scenario

    churn = autoscale = rebalance = None
    if variant in ("churn", "autoscale", "full"):
        spec = consolidation_scenario(
            level=1,
            mode="gapped",
            n_servers=2,
            duration_ns=duration_ns,
            seed=seed,
            costs=costs,
        )
        if variant in ("churn", "full"):
            churn = ChurnSpec(
                arrival_rate_per_s=120.0,
                mean_lifetime_ns=ms(25),
                tenant_factory=default_churn_tenant,
                max_concurrent=3,
            )
        if variant in ("autoscale", "full"):
            # 6000 rps static tenants over-provisioned at 4 vCPUs:
            # ceil(6000/2500) = 3 makes the scaler shed a core per tenant
            autoscale = AutoscalePolicy(rps_per_vcpu=2500.0)
        if variant == "full":
            rebalance = RebalancePolicy(imbalance_threshold=4)
    elif variant == "rebalance":
        spec = ScenarioSpec(
            servers=uniform_rack(
                2,
                SystemConfig(mode="gapped", n_cores=16),
                seed=derive_seed(seed, "fleet-sweep", "elastic-rebalance"),
            ),
            tenants=(
                redis_tenant("big", n_vcpus=4, rate_rps=4000.0, costs=costs),
                redis_tenant("small", n_vcpus=2, rate_rps=2000.0, costs=costs),
            ),
            duration_ns=duration_ns,
            seed=seed,
            placement="pack",
        )
        rebalance = RebalancePolicy(imbalance_threshold=3)
    else:
        raise ValueError(
            f"unknown elastic variant {variant!r}; expected one of "
            f"{ELASTIC_VARIANTS}"
        )
    return spec, churn, autoscale, rebalance


def run_elastic_case(
    variant: str,
    duration_ns: int = ms(60),
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict:
    """One elastic sweep data point, as a picklable summary dict."""
    from dataclasses import asdict

    spec, churn, autoscale, rebalance = _elastic_case(
        variant, duration_ns, seed, costs
    )
    outcome = run_elastic(
        spec,
        churn=churn,
        autoscale=autoscale,
        rebalance=rebalance,
        epoch_ns=ms(10),
        costs=costs,
    )
    issued = sum(row.issued for row in outcome.rows)
    completed = sum(row.completed for row in outcome.rows)
    return {
        "variant": variant,
        "counts": dict(outcome.counts),
        "issued": issued,
        "completed": completed,
        "dropped": issued - completed,
        "worst_p99_ms": max((r.p99_ms for r in outcome.rows), default=0.0),
        "slo_violations": sum(r.slo_violations for r in outcome.rows),
        "migration_slo_charge": sum(
            r.migration_slo_charge for r in outcome.rows
        ),
        "conservation_ok": outcome.conservation_ok,
        "audit_problems": list(outcome.audit_problems),
        "tenants": [asdict(row) for row in outcome.rows],
        "timeline": [asdict(event) for event in outcome.timeline],
        "counters": outcome.counters,
        "end_ns": outcome.end_ns,
    }


def elastic_cells(
    variants: Tuple[str, ...] = ELASTIC_VARIANTS,
    duration_ns: int = ms(60),
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
):
    """The elastic sweep as independent runner cells, in merge order."""
    from ..experiments.runner import cell

    return [
        cell(
            f"elastic/{variant}",
            run_elastic_case,
            variant=variant,
            duration_ns=duration_ns,
            seed=seed,
            costs=costs,
        )
        for variant in variants
    ]


def run_elastic_sweep(
    variants: Tuple[str, ...] = ELASTIC_VARIANTS,
    duration_ns: int = ms(60),
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
    jobs: Optional[int] = None,
) -> Dict[str, Dict]:
    """Run every variant; returns ``variant -> summary`` in sweep order."""
    from ..experiments.runner import run_cells

    cells = elastic_cells(variants, duration_ns, seed, costs)
    outputs = run_cells(cells, jobs=jobs)
    return {summary["variant"]: summary for summary in outputs}


def storm_stream(seed: int):
    """Seeded decision stream for the hotplug-storm chaos harness.

    Lives here (not in the harness) because this module is the
    sanctioned seed root for fleet-lifecycle processes: storm decisions
    are churn-domain draws, derived from the scenario seed exactly like
    the arrival/lifetime schedule.
    """
    factory = RngFactory(derive_seed(seed, "fleet-churn", "storm"))
    return factory.stream("churn:storm")
