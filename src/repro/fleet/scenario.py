"""Boot a ScenarioSpec into running systems; run it; collect results.

``boot_scenario`` turns a declarative :class:`~repro.fleet.spec.ScenarioSpec`
into a :class:`Fleet` of booted servers.  Each server performs the exact
sequence every harness used to hand-write -- build the
:class:`~repro.experiments.system.System`, ``launch`` each guest,
attach its devices, ``start`` it -- so a one-server scenario is
bit-identical (same trace digest) to the imperative incantation it
replaces; ``tests/fleet/`` pins that equivalence.

Servers are independent simulations (their own
:class:`~repro.sim.engine.Simulator`, their own seed), so a fleet can
run serially in-process or as one runner cell per server with identical
results: :func:`boot_server`/:func:`run_server` are the per-server
slices the sweep executor fans out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..costs import CostModel, DEFAULT_COSTS
from ..experiments.system import System
from ..guest.vm import GuestVm
from ..sim.engine import SimulationError
from .placement import Placement
from .spec import ScenarioSpec, TenantSpec, VmSpec
from .traffic import OpenLoopClient

__all__ = [
    "BootedVm",
    "BootedServer",
    "TenantResult",
    "FleetResult",
    "Fleet",
    "boot_vm",
    "boot_server",
    "run_server",
    "drain_and_finish",
    "tenant_results",
    "boot_scenario",
]


@dataclass
class BootedVm:
    """One guest booted from a :class:`VmSpec`."""

    spec: VmSpec
    vm: GuestVm
    kvm: object
    devices: Dict[str, object] = field(default_factory=dict)


@dataclass
class BootedServer:
    """One running server plus its tenants and their load generators."""

    index: int
    system: System
    vms: List[BootedVm] = field(default_factory=list)
    clients: List[OpenLoopClient] = field(default_factory=list)


@dataclass(frozen=True)
class TenantResult:
    """Per-tenant serving outcome (pure data; pickles across workers)."""

    tenant: str
    server: int
    mode: str
    op: str
    rate_rps: float
    slo_ms: Optional[float]
    issued: int
    completed: int
    dropped: int
    throughput_krps: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    slo_violations: int


@dataclass
class FleetResult:
    """All tenants' results plus the rejections that never booted."""

    tenants: List[TenantResult] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)

    def tenant(self, name: str) -> TenantResult:
        for result in self.tenants:
            if result.tenant == name:
                return result
        raise KeyError(name)

    def total_throughput_krps(self) -> float:
        return sum(r.throughput_krps for r in self.tenants)

    def worst_p99_ms(self) -> float:
        return max((r.p99_ms for r in self.tenants), default=0.0)

    def slo_violation_pct(self) -> float:
        issued = sum(r.issued for r in self.tenants)
        if issued == 0:
            return 0.0
        return 100.0 * sum(r.slo_violations for r in self.tenants) / issued


class Fleet:
    """A booted scenario: one :class:`BootedServer` per accepted server."""

    def __init__(
        self,
        spec: ScenarioSpec,
        placement: Placement,
        servers: List[BootedServer],
    ):
        self.spec = spec
        self.placement = placement
        self.servers = servers
        #: the lifecycle controller that built this fleet (set by
        #: :class:`~repro.fleet.elastic.FleetController`); None only
        #: for fleets assembled by hand from boot_server slices
        self.controller = None

    def run(self) -> FleetResult:
        """Serve traffic on every server and merge per-tenant results."""
        result = FleetResult(
            rejected=[name for name, _ in self.placement.rejected]
        )
        for server in self.servers:
            result.tenants.extend(run_server(server, self.spec))
        return result


# ---------------------------------------------------------------------------
# boot


def boot_vm(system: System, spec: VmSpec, costs: CostModel = DEFAULT_COSTS) -> BootedVm:
    """Launch one guest and attach its devices (the old incantation)."""
    vm = GuestVm(
        spec.name,
        spec.n_vcpus,
        spec.workload,
        costs=costs,
        memory_gib=spec.memory_gib,
    )
    kvm = system.launch(vm)
    booted = BootedVm(spec=spec, vm=vm, kvm=kvm)
    for device in spec.devices:
        if device.kind == "virtio-net":
            attached = system.add_virtio_net(
                kvm, device.name or None, echo_peer=device.echo_peer
            )
        elif device.kind == "virtio-blk":
            attached = system.add_virtio_blk(kvm, device.name or None)
        else:  # "sriov-nic" (DeviceSpec validates the kind)
            attached = system.add_sriov_nic(
                kvm, device.name or None, echo_peer=device.echo_peer
            )
        booted.devices[attached.name] = attached
    system.start(kvm)
    return booted


def boot_server(
    spec: ScenarioSpec,
    placement: Placement,
    server_index: int,
    costs: CostModel = DEFAULT_COSTS,
) -> BootedServer:
    """Boot one server and the tenants placed on it, in declaration order.

    This is the per-server slice of :func:`boot_scenario`: because
    servers are independent simulations, booting server *k* here is
    bit-identical to booting the whole fleet and looking at server *k*.
    """
    config = spec.servers[server_index]
    system = System(config, costs)
    server = BootedServer(index=server_index, system=system)
    assigned = set(placement.tenants_on(server_index))
    fleet_rng = system.machine.rng.fork("fleet")
    for tenant in spec.tenants:
        if tenant.name not in assigned:
            continue
        booted = boot_vm(system, tenant.vm, costs)
        server.vms.append(booted)
        if tenant.traffic is not None:
            device = booted.devices[tenant.traffic.device]
            server.clients.append(
                OpenLoopClient(
                    system,
                    tenant,
                    device,
                    rng=fleet_rng.stream(f"arrivals:{tenant.name}"),
                    costs=costs,
                )
            )
    return server


def boot_scenario(
    spec: ScenarioSpec,
    costs: CostModel = DEFAULT_COSTS,
    admission: str = "strict",
) -> Fleet:
    """Place every tenant, boot every server, return the running fleet.

    The boot itself is the static special case of the elastic
    lifecycle API: a :class:`~repro.fleet.elastic.FleetController` is
    constructed around the spec and performs the exact place + boot
    sequence this function always did (bit-identical digests, pinned
    by ``tests/fleet/test_static_golden.py``).
    """
    from .elastic import FleetController  # lazy: avoid import cycle

    return FleetController(spec, costs=costs, admission=admission).fleet


# ---------------------------------------------------------------------------
# run


def run_server(server: BootedServer, spec: ScenarioSpec) -> List[TenantResult]:
    """Serve ``spec.duration_ns`` of open-loop traffic on one server.

    Arrivals stop at the duration mark; a bounded drain window then
    lets in-flight requests finish (an overloaded server simply keeps
    its unanswered requests as drops -- the open-loop regime's honest
    outcome).
    """
    system = server.system
    for client in server.clients:
        client.start(spec.duration_ns)
    system.run_for(spec.duration_ns)
    drain_and_finish(server, spec)
    return tenant_results(server)


def drain_and_finish(server: BootedServer, spec: ScenarioSpec) -> None:
    """The post-serving tail shared with the recovery supervisor: bounded
    drain, ``System.finish``, and the offered/dropped gauges."""
    system = server.system
    if server.clients and spec.drain_ns > 0:
        try:
            system.run_until(
                lambda: all(client.drained for client in server.clients),
                limit_ns=spec.drain_ns,
            )
        except SimulationError:
            pass  # drain budget spent; leftovers count as dropped
    system.finish()
    metrics = system.metrics
    metrics.gauge("fleet_offered_count").set(
        sum(client.stats.issued for client in server.clients)
    )
    metrics.gauge("fleet_dropped_count").set(
        sum(client.stats.dropped for client in server.clients)
    )


def tenant_results(server: BootedServer) -> List[TenantResult]:
    """Per-tenant outcomes from a served (finished) server."""
    system = server.system
    results: List[TenantResult] = []
    for client in server.clients:
        stats = client.stats
        traffic = client.traffic
        results.append(
            TenantResult(
                tenant=client.tenant.name,
                server=server.index,
                mode=system.config.mode,
                op=traffic.op.name,
                rate_rps=traffic.rate_rps,
                slo_ms=client.tenant.vm.slo_ms,
                issued=stats.issued,
                completed=stats.completed,
                dropped=stats.dropped,
                throughput_krps=stats.throughput_krps(),
                mean_ms=stats.mean_ms(),
                p50_ms=stats.percentile_ms(50),
                p95_ms=stats.percentile_ms(95),
                p99_ms=stats.percentile_ms(99),
                slo_violations=stats.slo_violations,
            )
        )
    return results
