"""repro.fleet: declarative scenarios + multi-server tenant serving.

The fleet layer stands on the :class:`~repro.experiments.system.System`
builder and gives it an API surface fit for racks instead of
one-off experiments:

* **specs** (:mod:`repro.fleet.spec`) -- ``VmSpec`` / ``TenantSpec`` /
  ``ScenarioSpec``: pure data describing servers, tenants, arrival
  process and duration; ``ScenarioSpec.boot()`` replaces the imperative
  ``System(...)`` + ``launch`` + ``add_*`` + ``run_until_*`` incantation;
* **placement** (:mod:`repro.fleet.placement`) -- core-gap-aware
  bin-packing with admission control: a CVM's vCPUs are a hard
  reservation of non-host cores, not a hint;
* **traffic** (:mod:`repro.fleet.traffic`) -- seeded open-loop Poisson
  load over the Table 5 Redis cost model, with per-tenant latency
  percentiles and SLO-violation accounting;
* **sweep** (:mod:`repro.fleet.sweep`) -- the ``fleet`` runner sweep:
  shared vs gapped racks across consolidation levels, one
  digest-deterministic cell per simulated server;
* **shard** (:mod:`repro.fleet.shard`) -- shared-nothing per-server
  sharding of one scenario: each server runs as its own runner cell
  and the outcomes merge back deterministically (tenant rows in server
  order, timelines interleaved by timestamp);
* **recovery** (:mod:`repro.fleet.recovery`) -- the checkpoint/restore
  supervisor: periodic :mod:`repro.snap` checkpoints during serving,
  verified restore + fault detach when a server dies, and SLO-honest
  recovery accounting across the restore boundary;
* **elastic** (:mod:`repro.fleet.elastic`) -- the lifecycle API
  (:class:`~repro.fleet.elastic.FleetController` with
  admit/evict/resize/migrate verbs and an event-sourced timeline),
  seeded tenant churn, a hotplug-path vCPU autoscaler, and a
  snapshot-based rebalancer; ``ScenarioSpec.boot()`` is the static
  special case of this API.
"""

from .elastic import (
    AutoscalePolicy,
    ChurnSpec,
    ElasticOutcome,
    FleetController,
    FleetEvent,
    RebalancePolicy,
    churn_schedule,
    elastic_cells,
    run_elastic,
    run_elastic_sweep,
)
from .placement import FleetAdmissionError, Placement, place, server_capacity
from .recovery import (
    RecoveryError,
    RecoveryPolicy,
    RecoveryReport,
    RestoreEvent,
    audit_server,
    build_recoverable_server,
    run_server_with_recovery,
)
from .scenario import (
    BootedServer,
    BootedVm,
    Fleet,
    FleetResult,
    TenantResult,
    boot_scenario,
    boot_server,
    boot_vm,
    drain_and_finish,
    run_server,
    tenant_results,
)
from .shard import (
    ShardOutcome,
    ShardedFleetResult,
    merge_shards,
    merge_timelines,
    run_scenario_sharded,
    shard_cells,
)
from .spec import (
    DeviceSpec,
    ScenarioSpec,
    TenantSpec,
    TrafficSpec,
    VmSpec,
    redis_tenant,
    uniform_rack,
)
from .sweep import FleetSweepResult, consolidation_scenario, fleet_cells, run_fleet
from .traffic import OpenLoopClient, TenantStats

__all__ = [
    "AutoscalePolicy",
    "BootedServer",
    "BootedVm",
    "ChurnSpec",
    "DeviceSpec",
    "ElasticOutcome",
    "Fleet",
    "FleetController",
    "FleetEvent",
    "RebalancePolicy",
    "FleetAdmissionError",
    "FleetResult",
    "FleetSweepResult",
    "OpenLoopClient",
    "Placement",
    "RecoveryError",
    "RecoveryPolicy",
    "RecoveryReport",
    "RestoreEvent",
    "ScenarioSpec",
    "ShardOutcome",
    "ShardedFleetResult",
    "TenantResult",
    "TenantSpec",
    "TenantStats",
    "TrafficSpec",
    "VmSpec",
    "audit_server",
    "boot_scenario",
    "boot_server",
    "boot_vm",
    "build_recoverable_server",
    "churn_schedule",
    "consolidation_scenario",
    "drain_and_finish",
    "elastic_cells",
    "fleet_cells",
    "merge_shards",
    "merge_timelines",
    "place",
    "redis_tenant",
    "run_elastic",
    "run_elastic_sweep",
    "run_fleet",
    "run_scenario_sharded",
    "run_server",
    "shard_cells",
    "run_server_with_recovery",
    "server_capacity",
    "tenant_results",
]
