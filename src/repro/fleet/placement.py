"""Core-gap-aware placement: bin-pack CVMs by free non-host cores.

On a core-gapped server a tenant's vCPU count is not a scheduling hint
but a hard core reservation: the planner will dedicate ``n_vcpus``
physical cores to the realm, and the host keeps ``n_host_cores`` for
exit handling and interrupt delivery.  Placement therefore bin-packs
tenants by *free non-host cores* and refuses (admission control) any
tenant whose gap no longer fits -- exactly the refusal the in-simulation
:class:`~repro.host.planner.CorePlanner` would produce, decided up
front so a scenario can be sharded per server before anything boots.

Shared-core servers have no gap; capacity is the core count itself
(fair accounting, S5.1: no oversubscription in any comparison).

The packing is deterministic: tenants are placed in declaration order,
each onto the *fullest* server that still fits it (best-fit; ties break
to the lowest server index).  Declaration order in, placement out --
no hashing, no RNG -- so the same spec always places the same way, in
any process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..experiments.config import SystemConfig
from .spec import ScenarioSpec

__all__ = [
    "FleetAdmissionError",
    "Placement",
    "server_capacity",
    "choose_server",
    "place",
]


class FleetAdmissionError(Exception):
    """The scenario does not fit the rack (strict boot refuses it)."""


def server_capacity(config: SystemConfig) -> int:
    """vCPU capacity of one server under fair accounting.

    The isolation policy decides: a core-gapping policy dedicates every
    core that is not reserved for the host to a CVM vCPU, so admission
    is core-granular.  Shared-core policies (flush-on-switch, none)
    timeshare: all cores run vCPUs, and we do not oversubscribe.
    """
    if config.resolved_policy().requires_core_gap:
        return max(0, config.n_cores - config.n_host_cores)
    return config.n_cores


@dataclass(frozen=True)
class Placement:
    """Deterministic tenant -> server assignment for one scenario."""

    #: (tenant name, server index), in tenant declaration order
    assignments: Tuple[Tuple[str, int], ...]
    #: (tenant name, human-readable refusal), in declaration order
    rejected: Tuple[Tuple[str, str], ...]
    #: free vCPU capacity left on each server after placement
    free: Tuple[int, ...]

    def server_of(self, tenant: str) -> Optional[int]:
        for name, index in self.assignments:
            if name == tenant:
                return index
        return None

    def tenants_on(self, server: int) -> List[str]:
        return [name for name, index in self.assignments if index == server]


def choose_server(
    need: int, free: List[int], strategy: str
) -> Optional[int]:
    """One placement decision: which server takes a ``need``-vCPU tenant.

    This is the single admission step shared by boot-time :func:`place`
    and the elastic controller's mid-run ``admit`` — churned tenants go
    through exactly the bin-packing a static spec would.  Returns the
    chosen server index or None (admission refused).
    """
    pack = strategy == "pack"
    best: Optional[int] = None
    for index, capacity in enumerate(free):
        if capacity < need:
            continue
        if (
            best is None
            or (pack and capacity < free[best])
            or (not pack and capacity > free[best])
        ):
            best = index
    return best


def place(spec: ScenarioSpec) -> Placement:
    """Assign ``spec.tenants`` to ``spec.servers`` by the spec's strategy.

    ``pack`` is best-fit (fullest server that still fits: consolidate,
    leave whole servers free); ``spread`` is emptiest-first (balance
    load across the rack).  Both are deterministic with ties broken to
    the lowest server index.
    """
    free = [server_capacity(config) for config in spec.servers]
    assignments: List[Tuple[str, int]] = []
    rejected: List[Tuple[str, str]] = []
    for tenant in spec.tenants:
        need = tenant.vm.n_vcpus
        best = choose_server(need, free, spec.placement)
        if best is None:
            rejected.append(
                (
                    tenant.name,
                    f"needs {need} core(s); free per server: {free}",
                )
            )
            continue
        free[best] -= need
        assignments.append((tenant.name, best))
    return Placement(
        assignments=tuple(assignments),
        rejected=tuple(rejected),
        free=tuple(free),
    )
