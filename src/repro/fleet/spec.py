"""Declarative scenario specs: what to run, not how to wire it.

The imperative incantation every harness used to hand-roll --
``System(SystemConfig(...))`` + ``launch`` + ``add_*`` + ``run_until_*``
-- is replaced by three layers of frozen, order-stable data:

* :class:`VmSpec` -- one guest: vCPUs, workload factory, devices, SLO;
* :class:`TenantSpec` -- a :class:`VmSpec` plus (optionally) the
  open-loop traffic offered to it (:class:`TrafficSpec`);
* :class:`ScenarioSpec` -- a rack: server configs, tenants, arrival
  process seed, and duration.  ``ScenarioSpec.boot()`` places tenants
  onto servers (core-gap-aware bin-packing, admission control) and
  boots every accepted VM into a running :class:`~repro.fleet.scenario.Fleet`.

Because the spec is pure data, the exact same scenario can run
in-process (``spec.boot().run()``), be sharded into one runner cell per
server (``repro.fleet.sweep``), or be rebuilt bit-identically inside a
worker process -- same seed, same placement, same trace digests.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..experiments.config import SystemConfig
from ..guest.workloads.redis import OP_GET, RedisOp, redis_server_factory
from ..sim.clock import sec
from ..sim.rng import derive_seed

__all__ = [
    "ADMISSION_MODES",
    "DeviceSpec",
    "VmSpec",
    "TrafficSpec",
    "TenantSpec",
    "ScenarioSpec",
    "redis_tenant",
    "resolve_admission",
    "uniform_rack",
]

#: device kinds the system builder knows how to attach
DEVICE_KINDS = ("virtio-net", "virtio-blk", "sriov-nic")

#: admission behaviours ``ScenarioSpec.boot`` understands: ``strict``
#: raises on any refused tenant, ``best_effort`` boots the placeable
#: subset and reports the rejections on the fleet
ADMISSION_MODES = ("strict", "best_effort")


@dataclass(frozen=True)
class DeviceSpec:
    """One device to attach at boot (maps onto ``System.add_*``)."""

    kind: str  # "virtio-net" | "virtio-blk" | "sriov-nic"
    name: str = ""  # empty = the kind's default name
    echo_peer: bool = False

    def __post_init__(self):
        if self.kind not in DEVICE_KINDS:
            raise ValueError(
                f"unknown device kind {self.kind!r}; expected one of "
                f"{DEVICE_KINDS}"
            )


@dataclass(frozen=True)
class VmSpec:
    """One guest VM: sizing, workload, devices, and its latency SLO.

    ``workload`` follows the :class:`~repro.guest.vm.GuestVm` factory
    contract: ``(vm, vcpu_index) -> Optional[Generator]``.
    """

    name: str
    n_vcpus: int
    workload: Callable
    devices: Tuple[DeviceSpec, ...] = ()
    #: per-request latency budget for SLO accounting (None = no SLO)
    slo_ms: Optional[float] = None
    memory_gib: int = 16

    def __post_init__(self):
        if self.n_vcpus < 1:
            raise ValueError(f"vm {self.name!r}: n_vcpus must be >= 1")


@dataclass(frozen=True)
class TrafficSpec:
    """Open-loop load offered to one tenant.

    The arrival process is seeded per tenant from the server's
    :class:`~repro.sim.rng.RngFactory`, so adding a tenant never
    perturbs the draws any other tenant sees.
    """

    #: mean offered load (requests per second of simulated time)
    rate_rps: float
    #: the request type (reuses the Table 5 Redis cost model)
    op: RedisOp = OP_GET
    #: inter-arrival process; only "poisson" is defined today
    process: str = "poisson"
    #: which of the VmSpec's devices requests arrive through
    device: str = "sriov-net0"

    def __post_init__(self):
        if self.process != "poisson":
            raise ValueError(
                f"unknown arrival process {self.process!r} (only 'poisson')"
            )
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a VM plus the traffic (if any) offered to it."""

    vm: VmSpec
    traffic: Optional[TrafficSpec] = None

    @property
    def name(self) -> str:
        return self.vm.name


@dataclass(frozen=True)
class ScenarioSpec:
    """A rack of servers serving open-loop tenant traffic.

    ``servers`` is one :class:`SystemConfig` per simulated server;
    servers are independent machines (no cross-server traffic), which
    is what makes a scenario shardable into one runner cell per server.
    """

    servers: Tuple[SystemConfig, ...]
    tenants: Tuple[TenantSpec, ...]
    duration_ns: int = sec(1)
    #: extra time after arrivals stop for in-flight requests to finish
    drain_ns: int = 50_000_000
    seed: int = 0
    #: bin-packing strategy: "pack" (consolidate, best-fit) or
    #: "spread" (balance, emptiest-first)
    placement: str = "pack"

    def __post_init__(self):
        if not self.servers:
            raise ValueError("scenario needs at least one server")
        if self.placement not in ("pack", "spread"):
            raise ValueError(
                f"unknown placement strategy {self.placement!r} "
                "(expected 'pack' or 'spread')"
            )
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    def boot(
        self,
        costs: CostModel = DEFAULT_COSTS,
        admission: Optional[str] = None,
        strict: Optional[bool] = None,
    ):
        """Place + boot into a running :class:`~repro.fleet.scenario.Fleet`.

        ``admission="strict"`` (the default) raises
        :class:`~repro.fleet.placement.FleetAdmissionError` if any
        tenant cannot be admitted; ``admission="best_effort"`` boots
        the placeable subset and reports the rejections on the fleet.

        The boolean ``strict=`` keyword is deprecated; it maps onto the
        admission modes and warns.

        Static boot is the degenerate case of the elastic lifecycle
        API: the returned fleet carries the
        :class:`~repro.fleet.elastic.FleetController` that built it as
        ``fleet.controller``, with the boot-time placement recorded on
        its event timeline.
        """
        admission = resolve_admission(admission, strict)
        from .scenario import boot_scenario  # lazy: avoid import cycle

        return boot_scenario(self, costs=costs, admission=admission)


def resolve_admission(
    admission: Optional[str], strict: Optional[bool] = None
) -> str:
    """Normalize the admission argument, warning on the old boolean.

    ``boot(strict=True/False)`` was a boolean trap (``boot(False)``
    read as nothing); the enum spells the behaviour out.  Passing both
    spellings is an error; passing neither means ``"strict"``.
    """
    if strict is not None:
        if admission is not None:
            raise TypeError(
                "pass either admission= or the deprecated strict=, not both"
            )
        warnings.warn(
            "ScenarioSpec.boot(strict=...) is deprecated; use "
            "admission='strict' or admission='best_effort'",
            DeprecationWarning,
            stacklevel=3,
        )
        admission = "strict" if strict else "best_effort"
    if admission is None:
        admission = "strict"
    if admission not in ADMISSION_MODES:
        raise ValueError(
            f"unknown admission mode {admission!r}; expected one of "
            f"{ADMISSION_MODES}"
        )
    return admission


# ---------------------------------------------------------------------------
# convenience constructors


def redis_tenant(
    name: str,
    n_vcpus: int,
    rate_rps: float,
    op: RedisOp = OP_GET,
    slo_ms: float = 2.0,
    costs: CostModel = DEFAULT_COSTS,
) -> TenantSpec:
    """The standard serving tenant: a Redis guest behind an SR-IOV VF.

    Mirrors the Table 5 single-server setup (single-threaded Redis on
    vCPU 0, remaining vCPUs background load) with open-loop arrivals
    instead of 50 closed-loop clients.
    """
    device = "sriov-net0"
    return TenantSpec(
        vm=VmSpec(
            name=name,
            n_vcpus=n_vcpus,
            workload=redis_server_factory(device, costs),
            devices=(DeviceSpec("sriov-nic", device),),
            slo_ms=slo_ms,
        ),
        traffic=TrafficSpec(rate_rps=rate_rps, op=op, device=device),
    )


def uniform_rack(
    n_servers: int, template: SystemConfig, seed: int = 0
) -> Tuple[SystemConfig, ...]:
    """``n_servers`` copies of ``template`` with derived per-server seeds.

    Seeds come from the injection-proof
    :func:`~repro.sim.rng.derive_seed`, so racks built from different
    scenario seeds (or different server counts) never share substreams.
    """
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")
    return tuple(
        replace(template, seed=derive_seed(seed, "fleet-server", str(index)))
        for index in range(n_servers)
    )
