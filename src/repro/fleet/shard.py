"""Shared-nothing per-server sharding of one fleet scenario.

A :class:`~repro.fleet.spec.ScenarioSpec` is a rack of *independent*
simulations — every server owns its :class:`~repro.sim.engine.Simulator`
and a seed derived from (scenario seed, server index), and nothing
crosses between servers at runtime.  ``Fleet.run`` nevertheless serves
them one after another in a single process.  This module exploits the
independence: each server becomes one runner cell (a *shard*), the
shards fan out over the sweep executor's process pool, and the
per-shard outcomes are merged back deterministically:

* tenant rows concatenate in server order (exactly ``Fleet.run``'s
  order), so the merged :class:`~repro.fleet.scenario.FleetResult` is
  bit-identical to the serial one regardless of worker scheduling;
* each shard also returns its simulation timeline (execution spans, or
  full trace records when schedule tracing is on), and
  :func:`merge_timelines` interleaves them into one rack-level view
  ordered by ``(timestamp, server, arrival index)`` — a total order
  that no pool scheduling can perturb.

Scenario specs carry workload factories (closures), which do not
pickle; shards therefore reference a *scenario builder* by
``"module:qualname"`` name — the same discipline
:class:`~repro.experiments.runner.Cell` imposes on cell functions —
and each worker rebuilds the spec locally from plain kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..experiments.runner import Cell, cell, run_cells
from .placement import FleetAdmissionError, place
from .scenario import FleetResult, TenantResult, boot_server, run_server
from .spec import ScenarioSpec

__all__ = [
    "ShardOutcome",
    "ShardedFleetResult",
    "build_scenario",
    "shard_cells",
    "merge_shards",
    "merge_timelines",
    "run_scenario_sharded",
]


@dataclass(frozen=True)
class ShardOutcome:
    """Everything one server shard reports back (pure data; pickles)."""

    server: int
    tenants: List[TenantResult]
    #: ``(timestamp, line)`` in the shard's own emission order
    timeline: List[Tuple[int, str]]
    counters: Dict[str, int]
    end_ns: int


@dataclass
class ShardedFleetResult:
    """The deterministic merge of every shard of one scenario."""

    result: FleetResult
    #: rack-level timeline, ordered by (timestamp, server, arrival)
    timeline: List[str] = field(default_factory=list)
    #: per-server counters under ``server<k>:<name>`` keys
    counters: Dict[str, int] = field(default_factory=dict)
    end_ns: int = 0
    #: how the shards actually ran (serial or worker count)
    jobs: int = 1


def build_scenario(builder: str, kwargs: Dict[str, Any]) -> ScenarioSpec:
    """Resolve a scenario builder by name and call it.

    ``builder`` is ``"module:qualname"`` naming a top-level function
    returning a :class:`ScenarioSpec`; resolution reuses the runner's
    import-once cache, so every shard of a worker process pays the
    import a single time.
    """
    from ..experiments.runner import _resolve

    spec = _resolve(builder)(**kwargs)
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"scenario builder {builder!r} returned {type(spec).__name__}, "
            "expected ScenarioSpec"
        )
    return spec


def _shard_timeline(server) -> List[Tuple[int, str]]:
    """One server's timeline: trace records when tracing is on (they
    subsume spans), execution spans otherwise."""
    tracer = server.system.tracer
    if tracer.enabled:
        return [
            (r.time, f"{r.kind}|{r.core}|{r.domain}|{r.detail}")
            for r in tracer.records
        ]
    return [
        (s.start, f"span|{s.core}|{s.domain}|{s.start}|{s.end}")
        for s in tracer.spans
    ]


def run_shard(
    builder: str,
    builder_kwargs: Dict[str, Any],
    server_index: int,
    costs: CostModel = DEFAULT_COSTS,
) -> ShardOutcome:
    """Boot and serve one server of the scenario (the cell function).

    Admission control runs in every shard over the full spec — placement
    is a pure function of the spec, so each shard computes the identical
    :class:`~repro.fleet.placement.Placement` the serial boot would.
    """
    spec = build_scenario(builder, builder_kwargs)
    placement = place(spec)
    server = boot_server(spec, placement, server_index, costs)
    tenants = run_server(server, spec)
    return ShardOutcome(
        server=server_index,
        tenants=tenants,
        timeline=_shard_timeline(server),
        counters={
            k: int(v) for k, v in sorted(server.system.tracer.counters.items())
        },
        end_ns=server.system.sim.now,
    )


def shard_cells(
    builder: str,
    builder_kwargs: Dict[str, Any],
    n_servers: int,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Cell]:
    """One cell per server, in server (== merge) order."""
    return [
        cell(
            f"shard/{builder}/server{index}",
            run_shard,
            builder=builder,
            builder_kwargs=builder_kwargs,
            server_index=index,
            costs=costs,
        )
        for index in range(n_servers)
    ]


def merge_timelines(
    outcomes: List[ShardOutcome],
) -> List[str]:
    """Interleave shard timelines into one rack-level timeline.

    Total order: ``(timestamp, server, arrival index)``.  Within one
    server, simultaneous entries keep their emission order — the order
    the server's own deterministic run produced — so the merged view is
    a pure function of the shard outcomes, never of pool scheduling.
    """
    entries: List[Tuple[int, int, int, str]] = []
    for outcome in outcomes:
        entries.extend(
            (time, outcome.server, position, line)
            for position, (time, line) in enumerate(outcome.timeline)
        )
    entries.sort(key=lambda e: e[:3])
    return [
        f"{time}|s{server}|{line}" for time, server, _, line in entries
    ]


def merge_shards(
    outcomes: List[ShardOutcome],
    rejected: List[str],
    jobs: int = 1,
) -> ShardedFleetResult:
    """Merge shard outcomes in server order (``Fleet.run``'s order)."""
    outcomes = sorted(outcomes, key=lambda o: o.server)
    result = FleetResult(rejected=list(rejected))
    counters: Dict[str, int] = {}
    for outcome in outcomes:
        result.tenants.extend(outcome.tenants)
        for key, value in outcome.counters.items():
            counters[f"server{outcome.server}:{key}"] = value
    return ShardedFleetResult(
        result=result,
        timeline=merge_timelines(outcomes),
        counters=counters,
        end_ns=max((o.end_ns for o in outcomes), default=0),
        jobs=jobs,
    )


def run_scenario_sharded(
    builder: str,
    builder_kwargs: Optional[Dict[str, Any]] = None,
    jobs: Optional[int] = None,
    costs: CostModel = DEFAULT_COSTS,
    strict: bool = True,
) -> ShardedFleetResult:
    """Serve one scenario with one shard per server.

    ``jobs`` follows :func:`~repro.experiments.runner.resolve_jobs`
    (explicit > ``REPRO_JOBS`` > serial); ``jobs="auto"`` sizes the pool
    from the host (see :func:`~repro.experiments.runner.resolve_jobs`).
    Serial and sharded runs produce bit-identical merged results —
    ``tests/fleet/test_shard.py`` pins that equivalence.
    """
    from ..experiments.runner import resolve_jobs

    builder_kwargs = dict(builder_kwargs or {})
    spec = build_scenario(builder, builder_kwargs)
    placement = place(spec)
    if strict and placement.rejected:
        detail = "; ".join(
            f"{name}: {reason}" for name, reason in placement.rejected
        )
        raise FleetAdmissionError(
            f"{len(placement.rejected)} tenant(s) refused admission: {detail}"
        )
    cells = shard_cells(builder, builder_kwargs, len(spec.servers), costs)
    resolved = resolve_jobs(jobs, n_cells=len(cells))
    outcomes = run_cells(cells, jobs=resolved)
    return merge_shards(
        outcomes,
        rejected=[name for name, _ in placement.rejected],
        jobs=resolved,
    )
